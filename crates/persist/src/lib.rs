//! Crash-safe snapshot store for the MBF pipeline.
//!
//! One snapshot file holds any subset of the pipeline's durable state —
//! engine/oracle state vectors ([`mte_algebra::DistanceMap`] /
//! [`mte_algebra::WidthMap`]), epoch-arena pools
//! ([`mte_algebra::EpochStore`]), LE lists and their random order
//! ([`mte_core::frt::LeList`], [`mte_core::frt::Ranks`]), sampled FRT
//! trees ([`mte_core::frt::FrtTree`]), and mid-run checkpoints
//! ([`mte_core::checkpoint::Checkpoint`]) — in a versioned,
//! length-prefixed, checksummed little-endian binary format:
//!
//! ```text
//! magic "MTESNAP1" | version u32 | section count u32 | file CRC u32
//! per section: tag u32 | payload length u64 | payload CRC u32 | payload
//! ```
//!
//! The file CRC covers every byte after the header; each payload
//! additionally carries its own CRC, so a load can name the section a
//! bit flip hit. Two guarantees:
//!
//! * **Crash-safe writes** — [`SnapshotWriter::write_to`] writes a
//!   temporary sibling, fsyncs it, atomically renames it over the
//!   target, and fsyncs the directory. Readers see the old snapshot or
//!   the new one, never a torn hybrid.
//! * **Panic-free loads** — every decode failure (bad magic, version
//!   skew, truncation, CRC mismatch, structurally invalid data) is a
//!   typed [`SnapshotError`]. `tests/snapshot_corpus.rs` fuzzes this
//!   contract with bit flips, truncations and arbitrary bytes.
//!
//! Persistence has its own fault sites — `snapshot_write` (torn
//! write/bit flip/truncation applied to the encoded image) and
//! `snapshot_read` (injected I/O failure) behind
//! [`mte_faults::FaultKind::Io`], drivable from `MTE_FAULT_PLAN` — so
//! the recovery ladder in [`mte_core::error::Supervisor`] can be
//! exercised end to end.

mod codec;
mod crc;
mod error;
mod wire;

pub use codec::StoreSnapshot;
pub use error::SnapshotError;

use crc::crc32;
use mte_algebra::store::EpochStore;
use mte_algebra::{DistanceMap, WidthMap};
use mte_core::checkpoint::Checkpoint;
use mte_core::frt::{FrtTree, LeList, Ranks};
use mte_faults::{check_for, check_handled, trigger_panic, FaultKind, FaultSite};
use std::fs;
use std::io::Write;
use std::path::Path;

/// File magic: "MTESNAP" + format generation.
pub const MAGIC: [u8; 8] = *b"MTESNAP1";
/// Current format version. Readers refuse anything else.
pub const VERSION: u32 = 1;

const HEADER_BYTES: usize = 8 + 4 + 4 + 4;
const SECTION_HEADER_BYTES: usize = 4 + 8 + 4;

/// Section tags. One snapshot holds at most one section per tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionTag {
    /// `Vec<DistanceMap>` — engine/oracle min-plus state vectors.
    DistanceMaps = 1,
    /// `Vec<WidthMap>` — max-min (widest-path) state vectors.
    WidthMaps = 2,
    /// [`EpochStore`] — the arena backend's pool, spans and rank column.
    Store = 3,
    /// `Vec<LeList>` — Least-Element lists (paper Section 7).
    LeLists = 4,
    /// [`Ranks`] — the random permutation the LE lists are relative to.
    Ranks = 5,
    /// [`FrtTree`] — a sampled tree embedding.
    FrtTree = 6,
    /// [`Checkpoint`] — a resumable mid-run capture.
    Checkpoint = 7,
}

impl SectionTag {
    fn from_u32(raw: u32) -> Option<SectionTag> {
        match raw {
            1 => Some(SectionTag::DistanceMaps),
            2 => Some(SectionTag::WidthMaps),
            3 => Some(SectionTag::Store),
            4 => Some(SectionTag::LeLists),
            5 => Some(SectionTag::Ranks),
            6 => Some(SectionTag::FrtTree),
            7 => Some(SectionTag::Checkpoint),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

/// Builds a snapshot section by section, then encodes or atomically
/// writes it. Re-putting a tag replaces that section.
#[derive(Default)]
pub struct SnapshotWriter {
    sections: Vec<(SectionTag, Vec<u8>)>,
}

impl SnapshotWriter {
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    fn put(&mut self, tag: SectionTag, payload: Vec<u8>) -> &mut Self {
        self.sections.retain(|(t, _)| *t != tag);
        self.sections.push((tag, payload));
        self
    }

    pub fn put_distance_maps(&mut self, maps: &[DistanceMap]) -> &mut Self {
        self.put(SectionTag::DistanceMaps, codec::encode_distance_maps(maps))
    }

    pub fn put_width_maps(&mut self, maps: &[WidthMap]) -> &mut Self {
        self.put(SectionTag::WidthMaps, codec::encode_width_maps(maps))
    }

    /// Captures the pool through its raw (un-fault-injected) span
    /// accessor: a snapshot records the state that *is*.
    pub fn put_store(&mut self, store: &EpochStore) -> &mut Self {
        self.put(SectionTag::Store, codec::encode_store(store))
    }

    pub fn put_le_lists(&mut self, lists: &[LeList]) -> &mut Self {
        self.put(SectionTag::LeLists, codec::encode_le_lists(lists))
    }

    pub fn put_ranks(&mut self, ranks: &Ranks) -> &mut Self {
        self.put(SectionTag::Ranks, codec::encode_ranks(ranks))
    }

    pub fn put_frt_tree(&mut self, tree: &FrtTree) -> &mut Self {
        self.put(SectionTag::FrtTree, codec::encode_frt_tree(tree))
    }

    pub fn put_checkpoint(&mut self, ckpt: &Checkpoint<DistanceMap>) -> &mut Self {
        self.put(SectionTag::Checkpoint, codec::encode_checkpoint(ckpt))
    }

    /// The encoded snapshot image.
    ///
    /// This is the `snapshot_write` fault site: an injected
    /// [`FaultKind::Io`] deterministically damages the image (torn
    /// write, bit flip, or zeroed header, chosen by image length) the
    /// way a crashed writer without the atomic-rename protocol would —
    /// the damage then surfaces as a typed [`SnapshotError`] at load,
    /// which is what the recovery ladder drills against. An injected
    /// panic kind aborts the encode (absorbed into a typed error by
    /// `run_guarded`).
    pub fn encode(&self) -> Vec<u8> {
        if check_for(FaultSite::SnapshotWrite, &[FaultKind::Panic]).is_some() {
            trigger_panic(FaultSite::SnapshotWrite);
        }
        let mut body = Vec::new();
        for (tag, payload) in &self.sections {
            wire::put_u32(&mut body, *tag as u32);
            wire::put_u64(&mut body, payload.len() as u64);
            wire::put_u32(&mut body, crc32(payload));
            body.extend_from_slice(payload);
        }
        let mut image = Vec::with_capacity(HEADER_BYTES + body.len());
        image.extend_from_slice(&MAGIC);
        wire::put_u32(&mut image, VERSION);
        wire::put_u32(&mut image, self.sections.len() as u32);
        wire::put_u32(&mut image, crc32(&body));
        image.extend_from_slice(&body);
        if check_handled(FaultSite::SnapshotWrite, &[FaultKind::Io]).is_some() {
            corrupt_image(&mut image);
        }
        image
    }

    /// Crash-safe write: encode, write to a temporary sibling, fsync,
    /// atomically rename over `path`, fsync the directory. A crash at
    /// any point leaves either the previous snapshot or the new one —
    /// never a torn hybrid.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        let image = self.encode();
        let io = |e: std::io::Error| SnapshotError::Io(e.to_string());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            let mut file = fs::File::create(&tmp).map_err(io)?;
            file.write_all(&image).map_err(io)?;
            file.sync_all().map_err(io)?;
            drop(file);
            fs::rename(&tmp, path).map_err(io)?;
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                // Make the rename itself durable. Directory fsync is
                // best-effort off Linux.
                if let Ok(d) = fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }
}

/// Deterministic image damage for the `snapshot_write` fault site,
/// keyed on the image length so sweeps over different payloads exercise
/// all three shapes.
fn corrupt_image(image: &mut Vec<u8>) {
    let len = image.len();
    match len % 3 {
        // A torn write: the tail never reached the disk.
        0 => image.truncate(len * 2 / 3),
        // A single flipped bit mid-file.
        1 => image[len / 2] ^= 0x10,
        // A zeroed-out header page.
        _ => image[..HEADER_BYTES.min(len)].fill(0),
    }
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/// A decoded snapshot: header and per-section checksums verified,
/// payloads split out. Typed getters decode individual sections.
#[derive(Debug)]
pub struct SnapshotReader {
    sections: Vec<(SectionTag, Vec<u8>)>,
}

impl SnapshotReader {
    /// Parses and checksum-verifies a snapshot image.
    ///
    /// This is the `snapshot_read` fault site: an injected
    /// [`FaultKind::Io`] surfaces as a typed [`SnapshotError::Io`]
    /// (absorbed, like the `.gr` parser's site); an injected panic kind
    /// aborts the decode.
    pub fn decode(bytes: &[u8]) -> Result<SnapshotReader, SnapshotError> {
        if check_for(FaultSite::SnapshotRead, &[FaultKind::Panic]).is_some() {
            trigger_panic(FaultSite::SnapshotRead);
        }
        if check_handled(FaultSite::SnapshotRead, &[FaultKind::Io]).is_some() {
            return Err(SnapshotError::Io("injected I/O failure".to_string()));
        }
        if bytes.len() < HEADER_BYTES {
            if !bytes.starts_with(&MAGIC[..bytes.len().min(8)]) || bytes.len() < 8 {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated { context: "header" });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut c = wire::Cursor::new(&bytes[8..HEADER_BYTES]);
        let version = c.u32("header").expect("header length checked");
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let section_count = c.u32("header").expect("header length checked");
        let file_crc = c.u32("header").expect("header length checked");
        let body = &bytes[HEADER_BYTES..];
        if crc32(body) != file_crc {
            return Err(SnapshotError::CrcMismatch { section: 0 });
        }
        let mut c = wire::Cursor::new(body);
        let mut sections = Vec::new();
        for _ in 0..section_count {
            let raw_tag = c.u32("section header")?;
            let len = c.u64("section header")?;
            let payload_crc = c.u32("section header")?;
            let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated {
                context: "section payload",
            })?;
            if len > c.remaining() {
                return Err(SnapshotError::Truncated {
                    context: "section payload",
                });
            }
            let payload = c.bytes(len, "section payload")?.to_vec();
            if crc32(&payload) != payload_crc {
                return Err(SnapshotError::CrcMismatch { section: raw_tag });
            }
            let tag = SectionTag::from_u32(raw_tag).ok_or_else(|| {
                SnapshotError::Malformed(format!("unknown section tag {raw_tag}"))
            })?;
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(SnapshotError::Malformed(format!(
                    "duplicate section tag {raw_tag}"
                )));
            }
            sections.push((tag, payload));
        }
        if !c.is_done() {
            return Err(SnapshotError::Malformed(format!(
                "{} bytes of trailing garbage after the last section",
                c.remaining()
            )));
        }
        Ok(SnapshotReader { sections })
    }

    /// Reads and decodes a snapshot file.
    pub fn read_from(path: &Path) -> Result<SnapshotReader, SnapshotError> {
        let bytes = fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        SnapshotReader::decode(&bytes)
    }

    /// Tags present in this snapshot, in file order.
    pub fn tags(&self) -> impl Iterator<Item = SectionTag> + '_ {
        self.sections.iter().map(|(t, _)| *t)
    }

    fn payload(&self, tag: SectionTag) -> Result<&[u8], SnapshotError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| p.as_slice())
            .ok_or_else(|| SnapshotError::Malformed(format!("snapshot has no {tag:?} section")))
    }

    pub fn distance_maps(&self) -> Result<Vec<DistanceMap>, SnapshotError> {
        codec::decode_distance_maps(self.payload(SectionTag::DistanceMaps)?)
    }

    pub fn width_maps(&self) -> Result<Vec<WidthMap>, SnapshotError> {
        codec::decode_width_maps(self.payload(SectionTag::WidthMaps)?)
    }

    pub fn store(&self) -> Result<StoreSnapshot, SnapshotError> {
        codec::decode_store(self.payload(SectionTag::Store)?)
    }

    pub fn le_lists(&self) -> Result<Vec<LeList>, SnapshotError> {
        codec::decode_le_lists(self.payload(SectionTag::LeLists)?)
    }

    pub fn ranks(&self) -> Result<Ranks, SnapshotError> {
        codec::decode_ranks(self.payload(SectionTag::Ranks)?)
    }

    pub fn frt_tree(&self) -> Result<FrtTree, SnapshotError> {
        codec::decode_frt_tree(self.payload(SectionTag::FrtTree)?)
    }

    pub fn checkpoint(&self) -> Result<Checkpoint<DistanceMap>, SnapshotError> {
        codec::decode_checkpoint(self.payload(SectionTag::Checkpoint)?)
    }
}

/// Expected on-disk size of the current writer contents (header plus
/// section headers plus payloads) — the overhead number
/// `exp_baseline` reports.
impl SnapshotWriter {
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES
            + self
                .sections
                .iter()
                .map(|(_, p)| SECTION_HEADER_BYTES + p.len())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_algebra::{Dist, Width};
    use mte_core::frt::le_lists_direct;
    use mte_graph::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn sample_maps() -> Vec<DistanceMap> {
        vec![
            DistanceMap::from_entries(vec![(0, Dist::new(0.0)), (3, Dist::new(2.5))]),
            DistanceMap::new(),
            DistanceMap::from_entries(vec![(1, Dist::new(7.25))]),
        ]
    }

    #[test]
    fn distance_maps_roundtrip_bit_exact() {
        let maps = sample_maps();
        let image = SnapshotWriter::new().put_distance_maps(&maps).encode();
        let back = SnapshotReader::decode(&image)
            .unwrap()
            .distance_maps()
            .unwrap();
        assert_eq!(back, maps);
    }

    #[test]
    fn width_maps_roundtrip() {
        let maps = vec![
            WidthMap::from_entries(vec![(2, Width::new(4.0)), (5, Width::INF)]),
            WidthMap::new(),
        ];
        let image = SnapshotWriter::new().put_width_maps(&maps).encode();
        let back = SnapshotReader::decode(&image)
            .unwrap()
            .width_maps()
            .unwrap();
        assert_eq!(back, maps);
    }

    #[test]
    fn store_roundtrip_preserves_spans_and_ranks() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = gnm_graph(30, 80, 1.0..5.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let alg = mte_core::frt::LeListAlgorithm::new(Arc::clone(&ranks));
        let store = mte_core::arena::initial_store(&alg, g.n());
        let image = SnapshotWriter::new().put_store(&store).encode();
        let snap = SnapshotReader::decode(&image).unwrap().store().unwrap();
        assert!(snap.ranked);
        let restored = snap.restore();
        assert_eq!(restored.export(), store.export());
        assert!(restored.is_ranked());
        for v in 0..g.n() as u32 {
            assert_eq!(
                restored.get_raw(v).ranks,
                store.get_raw(v).ranks,
                "node {v}"
            );
        }
    }

    #[test]
    fn le_lists_ranks_and_tree_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gnm_graph(25, 60, 1.0..4.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (lists, _, _) = le_lists_direct(&g, &ranks);
        let tree = FrtTree::from_le_lists(&lists, &ranks, 1.5, 1.0);
        let image = SnapshotWriter::new()
            .put_le_lists(&lists)
            .put_ranks(&ranks)
            .put_frt_tree(&tree)
            .encode();
        let reader = SnapshotReader::decode(&image).unwrap();
        let lists2 = reader.le_lists().unwrap();
        assert_eq!(lists2.len(), lists.len());
        for (a, b) in lists.iter().zip(&lists2) {
            assert_eq!(a.entries(), b.entries());
        }
        let ranks2 = reader.ranks().unwrap();
        for v in 0..g.n() as u32 {
            assert_eq!(ranks2.rank(v), ranks.rank(v));
        }
        let tree2 = reader.frt_tree().unwrap();
        assert_eq!(tree2.beta(), tree.beta());
        assert_eq!(tree2.radii(), tree.radii());
        assert_eq!(tree2.len(), tree.len());
        for v in 0..g.n() as u32 {
            for u in 0..v {
                assert_eq!(tree2.leaf_distance(u, v), tree.leaf_distance(u, v));
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ckpt = Checkpoint {
            hop: 42,
            frontier: vec![1, 4, 9],
            states: sample_maps(),
        };
        let image = SnapshotWriter::new().put_checkpoint(&ckpt).encode();
        let back = SnapshotReader::decode(&image)
            .unwrap()
            .checkpoint()
            .unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn atomic_write_and_read_from() {
        let dir = std::env::temp_dir().join(format!("mte_persist_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.mte");
        let maps = sample_maps();
        // Overwrite an existing snapshot: readers must never see a torn
        // hybrid, and the temp sibling must be gone afterwards.
        SnapshotWriter::new()
            .put_distance_maps(&[])
            .write_to(&path)
            .unwrap();
        SnapshotWriter::new()
            .put_distance_maps(&maps)
            .write_to(&path)
            .unwrap();
        let back = SnapshotReader::read_from(&path)
            .unwrap()
            .distance_maps()
            .unwrap();
        assert_eq!(back, maps);
        assert_eq!(
            fs::read_dir(&dir).unwrap().count(),
            1,
            "temp file left behind"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn encoded_len_matches_encode() {
        let mut w = SnapshotWriter::new();
        w.put_distance_maps(&sample_maps());
        w.put_checkpoint(&Checkpoint {
            hop: 1,
            frontier: vec![0],
            states: sample_maps(),
        });
        assert_eq!(w.encoded_len(), w.encode().len());
    }

    #[test]
    fn typed_errors_for_the_classic_corruptions() {
        let maps = sample_maps();
        let image = SnapshotWriter::new().put_distance_maps(&maps).encode();

        assert_eq!(
            SnapshotReader::decode(b"").unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            SnapshotReader::decode(b"NOTASNAP____________").unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            SnapshotReader::decode(&image[..10]).unwrap_err(),
            SnapshotError::Truncated { context: "header" }
        );

        let mut wrong_version = image.clone();
        wrong_version[8] = 99;
        assert_eq!(
            SnapshotReader::decode(&wrong_version).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 99 }
        );

        let mut flipped = image.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert_eq!(
            SnapshotReader::decode(&flipped).unwrap_err(),
            SnapshotError::CrcMismatch { section: 0 }
        );

        let truncated = &image[..image.len() - 3];
        assert_eq!(
            SnapshotReader::decode(truncated).unwrap_err(),
            SnapshotError::CrcMismatch { section: 0 }
        );

        let missing = SnapshotReader::decode(&image).unwrap();
        assert!(matches!(
            missing.checkpoint().unwrap_err(),
            SnapshotError::Malformed(_)
        ));
    }

    #[test]
    fn nan_distance_is_malformed_not_a_panic() {
        // Hand-assemble a valid container whose distance-map payload
        // carries a NaN — the CRCs are right, so only the structural
        // validator stands between this and `Dist::new`'s panic.
        let mut payload = Vec::new();
        wire::put_u64(&mut payload, 1); // one map
        wire::put_u64(&mut payload, 1); // one entry
        wire::put_u32(&mut payload, 0);
        wire::put_f64(&mut payload, f64::NAN);
        let mut body = Vec::new();
        wire::put_u32(&mut body, SectionTag::DistanceMaps as u32);
        wire::put_u64(&mut body, payload.len() as u64);
        wire::put_u32(&mut body, crc32(&payload));
        body.extend_from_slice(&payload);
        let mut image = Vec::new();
        image.extend_from_slice(&MAGIC);
        wire::put_u32(&mut image, VERSION);
        wire::put_u32(&mut image, 1);
        wire::put_u32(&mut image, crc32(&body));
        image.extend_from_slice(&body);
        let err = SnapshotReader::decode(&image)
            .unwrap()
            .distance_maps()
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)), "{err:?}");
    }
}
