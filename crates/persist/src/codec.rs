//! Per-type payload codecs. Encoders read the in-memory structures
//! through their public accessors; decoders validate **every**
//! structural invariant before constructing, because the constructors
//! on the other side either panic on bad input (`Dist::new` on
//! NaN/negative) or merely debug-assert it
//! (`LeList::from_entries_sorted`) — a snapshot that came from disk
//! gets no benefit of the doubt.

use crate::error::SnapshotError;
use crate::wire::{put_f64, put_u32, put_u64, Cursor};
use mte_algebra::maxmin::Width;
use mte_algebra::store::EpochStore;
use mte_algebra::{Dist, DistanceMap, NodeId, WidthMap};
use mte_core::checkpoint::Checkpoint;
use mte_core::frt::{FrtNode, FrtTree, LeList, Ranks};

fn finish(c: &Cursor<'_>, context: &'static str) -> Result<(), SnapshotError> {
    if c.is_done() {
        Ok(())
    } else {
        Err(SnapshotError::Malformed(format!(
            "{} bytes of trailing garbage after {context}",
            c.remaining()
        )))
    }
}

// -- distance maps ----------------------------------------------------

fn put_dist_entries(out: &mut Vec<u8>, entries: &[(NodeId, Dist)]) {
    put_u64(out, entries.len() as u64);
    for &(v, d) in entries {
        put_u32(out, v);
        put_f64(out, d.value());
    }
}

fn read_dist(c: &mut Cursor<'_>, context: &'static str) -> Result<Dist, SnapshotError> {
    let raw = c.f64(context)?;
    if raw.is_nan() || raw < 0.0 {
        return Err(SnapshotError::Malformed(format!(
            "distance {raw} in {context}"
        )));
    }
    Ok(Dist::new(raw))
}

/// One distance map: node ids strictly ascending, distances finite
/// (the [`DistanceMap`] invariant — `∞` entries are never stored).
fn read_distance_map(c: &mut Cursor<'_>) -> Result<DistanceMap, SnapshotError> {
    let len = c.count(12, "distance map")?;
    let mut entries = Vec::with_capacity(len);
    let mut prev: Option<NodeId> = None;
    for _ in 0..len {
        let v = c.u32("distance map entry")?;
        let d = read_dist(c, "distance map entry")?;
        if !d.is_finite() {
            return Err(SnapshotError::Malformed(format!(
                "infinite stored distance at node {v}"
            )));
        }
        if prev.is_some_and(|p| p >= v) {
            return Err(SnapshotError::Malformed(
                "distance map nodes not strictly ascending".to_string(),
            ));
        }
        prev = Some(v);
        entries.push((v, d));
    }
    Ok(DistanceMap::from_entries(entries))
}

pub fn encode_distance_maps(maps: &[DistanceMap]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, maps.len() as u64);
    for m in maps {
        put_dist_entries(&mut out, m.entries());
    }
    out
}

pub fn decode_distance_maps(payload: &[u8]) -> Result<Vec<DistanceMap>, SnapshotError> {
    let mut c = Cursor::new(payload);
    let maps = read_distance_maps(&mut c)?;
    finish(&c, "distance maps")?;
    Ok(maps)
}

fn read_distance_maps(c: &mut Cursor<'_>) -> Result<Vec<DistanceMap>, SnapshotError> {
    let n = c.count(8, "distance map count")?;
    (0..n).map(|_| read_distance_map(c)).collect()
}

// -- width maps -------------------------------------------------------

pub fn encode_width_maps(maps: &[WidthMap]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, maps.len() as u64);
    for m in maps {
        put_u64(&mut out, m.len() as u64);
        for (v, w) in m.iter() {
            put_u32(&mut out, v);
            put_f64(&mut out, w.value());
        }
    }
    out
}

pub fn decode_width_maps(payload: &[u8]) -> Result<Vec<WidthMap>, SnapshotError> {
    let mut c = Cursor::new(payload);
    let n = c.count(8, "width map count")?;
    let mut maps = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.count(12, "width map")?;
        let mut entries = Vec::with_capacity(len);
        let mut prev: Option<NodeId> = None;
        for _ in 0..len {
            let v = c.u32("width map entry")?;
            let raw = c.f64("width map entry")?;
            // `∞` is a legal width (uncapped link); NaN, negative and
            // zero are not storable (`WidthMap` drops zero entries).
            if raw.is_nan() || raw <= 0.0 {
                return Err(SnapshotError::Malformed(format!("width {raw} at node {v}")));
            }
            if prev.is_some_and(|p| p >= v) {
                return Err(SnapshotError::Malformed(
                    "width map nodes not strictly ascending".to_string(),
                ));
            }
            prev = Some(v);
            entries.push((v, Width::new(raw)));
        }
        maps.push(WidthMap::from_entries(entries));
    }
    finish(&c, "width maps")?;
    Ok(maps)
}

// -- epoch store ------------------------------------------------------

/// A decoded [`EpochStore`] image: per-vertex states plus the rank
/// column bits (when the store was ranked). Validated at decode;
/// [`StoreSnapshot::restore`] is infallible.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreSnapshot {
    /// Whether the source store carried the 4 B/entry rank column.
    pub ranked: bool,
    /// Per-vertex states, index = node id.
    pub states: Vec<DistanceMap>,
    /// Sorted `(key, rank)` pairs reconstructed from the rank columns —
    /// ranks are a pure function of the entry key (the
    /// `ArenaMbfAlgorithm::entry_aux` contract, checked at decode), so
    /// one table covers every span. Empty for unranked stores.
    aux: Vec<(NodeId, u32)>,
}

impl StoreSnapshot {
    /// Rebuilds the pool: bulk-import of the states with the recorded
    /// rank column. The result is observationally identical to the
    /// snapshotted store (same per-vertex spans, same rank bits); pool
    /// internals (chunk boundaries, garbage) are not preserved — they
    /// were never observable.
    pub fn restore(&self) -> EpochStore {
        let mut store = EpochStore::with_rank_column(self.states.len(), self.ranked);
        store.import(&self.states, |u| {
            match self.aux.binary_search_by_key(&u, |&(k, _)| k) {
                Ok(i) => self.aux[i].1,
                Err(_) => 0,
            }
        });
        store
    }
}

pub fn encode_store(store: &EpochStore) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(store.is_ranked() as u8);
    put_u64(&mut out, store.len() as u64);
    for v in 0..store.len() {
        let slice = store.get_raw(v as NodeId);
        put_dist_entries(&mut out, slice.entries);
        if store.is_ranked() {
            for &r in slice.ranks {
                put_u32(&mut out, r);
            }
        }
    }
    out
}

pub fn decode_store(payload: &[u8]) -> Result<StoreSnapshot, SnapshotError> {
    let mut c = Cursor::new(payload);
    let ranked = match c.u8("store header")? {
        0 => false,
        1 => true,
        other => {
            return Err(SnapshotError::Malformed(format!(
                "store ranked flag is {other}"
            )))
        }
    };
    let n = c.count(8, "store vertex count")?;
    let mut states = Vec::with_capacity(n);
    let mut aux: Vec<(NodeId, u32)> = Vec::new();
    for _ in 0..n {
        let map = read_distance_map(&mut c)?;
        if ranked {
            for &(key, _) in map.entries() {
                let rank = c.u32("store rank column")?;
                match aux.binary_search_by_key(&key, |&(k, _)| k) {
                    Ok(i) if aux[i].1 != rank => {
                        return Err(SnapshotError::Malformed(format!(
                            "key {key} carries conflicting ranks {} and {rank}",
                            aux[i].1
                        )));
                    }
                    Ok(_) => {}
                    Err(i) => aux.insert(i, (key, rank)),
                }
            }
        }
        states.push(map);
    }
    finish(&c, "store")?;
    Ok(StoreSnapshot {
        ranked,
        states,
        aux,
    })
}

// -- LE lists ---------------------------------------------------------

pub fn encode_le_lists(lists: &[LeList]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, lists.len() as u64);
    for l in lists {
        put_dist_entries(&mut out, l.entries());
    }
    out
}

pub fn decode_le_lists(payload: &[u8]) -> Result<Vec<LeList>, SnapshotError> {
    let mut c = Cursor::new(payload);
    let n = c.count(8, "LE list count")?;
    let mut lists = Vec::with_capacity(n);
    for _ in 0..n {
        let len = c.count(12, "LE list")?;
        let mut entries = Vec::with_capacity(len);
        let mut prev = Dist::ZERO;
        for _ in 0..len {
            let v = c.u32("LE list entry")?;
            let d = read_dist(&mut c, "LE list entry")?;
            if !d.is_finite() {
                return Err(SnapshotError::Malformed(format!(
                    "infinite LE distance at node {v}"
                )));
            }
            // `from_entries_sorted` only debug-asserts this; enforce it
            // here so release builds cannot smuggle in unsorted lists.
            if d < prev {
                return Err(SnapshotError::Malformed(
                    "LE list distances not ascending".to_string(),
                ));
            }
            prev = d;
            entries.push((v, d));
        }
        lists.push(LeList::from_entries_sorted(entries));
    }
    finish(&c, "LE lists")?;
    Ok(lists)
}

// -- ranks ------------------------------------------------------------

pub fn encode_ranks(ranks: &Ranks) -> Vec<u8> {
    let n = ranks.n();
    // order[rank(v)] = v inverts the rank table.
    let mut order = vec![0 as NodeId; n];
    for v in 0..n as NodeId {
        order[ranks.rank(v) as usize] = v;
    }
    let mut out = Vec::new();
    put_u64(&mut out, n as u64);
    for v in order {
        put_u32(&mut out, v);
    }
    out
}

pub fn decode_ranks(payload: &[u8]) -> Result<Ranks, SnapshotError> {
    let mut c = Cursor::new(payload);
    let n = c.count(4, "rank order")?;
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for _ in 0..n {
        let v = c.u32("rank order entry")?;
        if (v as usize) >= n || seen[v as usize] {
            return Err(SnapshotError::Malformed(format!(
                "rank order is not a permutation (node {v})"
            )));
        }
        seen[v as usize] = true;
        order.push(v);
    }
    finish(&c, "ranks")?;
    Ok(Ranks::from_order(order))
}

// -- FRT trees --------------------------------------------------------

pub fn encode_frt_tree(tree: &FrtTree) -> Vec<u8> {
    let mut out = Vec::new();
    put_f64(&mut out, tree.beta());
    put_u64(&mut out, tree.radii().len() as u64);
    for &r in tree.radii() {
        put_f64(&mut out, r);
    }
    put_u64(&mut out, tree.nodes().len() as u64);
    for node in tree.nodes() {
        put_u32(&mut out, node.level);
        put_u32(&mut out, node.leader);
        put_u64(&mut out, node.parent as u64);
        put_f64(&mut out, node.parent_weight);
        put_u32(&mut out, node.repr_leaf);
    }
    put_u64(&mut out, tree.num_vertices() as u64);
    for v in 0..tree.num_vertices() {
        put_u64(&mut out, tree.leaf(v as NodeId) as u64);
    }
    out
}

pub fn decode_frt_tree(payload: &[u8]) -> Result<FrtTree, SnapshotError> {
    let mut c = Cursor::new(payload);
    let beta = c.f64("FRT β")?;
    let num_radii = c.count(8, "FRT radii")?;
    let mut radii = Vec::with_capacity(num_radii);
    for _ in 0..num_radii {
        radii.push(c.f64("FRT radius")?);
    }
    let num_nodes = c.count(24, "FRT nodes")?;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let level = c.u32("FRT node")?;
        let leader = c.u32("FRT node")?;
        let parent = c.u64("FRT node")?;
        let parent_weight = c.f64("FRT node")?;
        let repr_leaf = c.u32("FRT node")?;
        let parent = usize::try_from(parent)
            .map_err(|_| SnapshotError::Malformed("FRT parent index overflow".to_string()))?;
        nodes.push(FrtNode {
            level,
            leader,
            parent,
            parent_weight,
            repr_leaf,
        });
    }
    let num_leaves = c.count(8, "FRT leaf table")?;
    let mut leaf = Vec::with_capacity(num_leaves);
    for _ in 0..num_leaves {
        let idx = c.u64("FRT leaf entry")?;
        leaf.push(
            usize::try_from(idx)
                .map_err(|_| SnapshotError::Malformed("FRT leaf index overflow".to_string()))?,
        );
    }
    finish(&c, "FRT tree")?;
    // `from_parts` re-validates the full tree structure (level ladder,
    // parent bounds, radius monotonicity, …).
    FrtTree::from_parts(nodes, leaf, radii, beta).map_err(SnapshotError::Malformed)
}

// -- checkpoints ------------------------------------------------------

pub fn encode_checkpoint(ckpt: &Checkpoint<DistanceMap>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, ckpt.hop);
    put_u64(&mut out, ckpt.frontier.len() as u64);
    for &v in &ckpt.frontier {
        put_u32(&mut out, v);
    }
    out.extend_from_slice(&encode_distance_maps(&ckpt.states));
    out
}

pub fn decode_checkpoint(payload: &[u8]) -> Result<Checkpoint<DistanceMap>, SnapshotError> {
    let mut c = Cursor::new(payload);
    let hop = c.u64("checkpoint hop")?;
    let len = c.count(4, "checkpoint frontier")?;
    let mut frontier = Vec::with_capacity(len);
    let mut prev: Option<NodeId> = None;
    for _ in 0..len {
        let v = c.u32("checkpoint frontier entry")?;
        if prev.is_some_and(|p| p >= v) {
            return Err(SnapshotError::Malformed(
                "checkpoint frontier not strictly ascending".to_string(),
            ));
        }
        prev = Some(v);
        frontier.push(v);
    }
    let states = read_distance_maps(&mut c)?;
    finish(&c, "checkpoint")?;
    Ok(Checkpoint {
        hop,
        frontier,
        states,
    })
}
