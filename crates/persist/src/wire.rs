//! Little-endian wire primitives. Everything in a snapshot is built
//! from four atoms — `u32`, `u64`, `f64` (IEEE bits), and
//! length-prefixed repetition — written LE regardless of host order, so
//! snapshots are portable and roundtrips are bit-exact.

use crate::error::SnapshotError;

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Bounded cursor over a decoded payload. Every read is
/// length-checked: running off the end is a typed
/// [`SnapshotError::Truncated`], never a slice panic.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Remaining unread bytes — decoders reject trailing garbage with
    /// this.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, len: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < len {
            return Err(SnapshotError::Truncated { context });
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// A raw byte run of known length.
    pub fn bytes(&mut self, len: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        self.take(len, context)
    }

    pub fn u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    pub fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    pub fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    pub fn f64(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// A length prefix about to drive a loop of `min_item_bytes`-sized
    /// reads. Checked against the bytes actually left, so a corrupted
    /// `u64::MAX` count fails fast as [`SnapshotError::Truncated`]
    /// instead of attempting a giant allocation.
    pub fn count(
        &mut self,
        min_item_bytes: usize,
        context: &'static str,
    ) -> Result<usize, SnapshotError> {
        let n = self.u64(context)?;
        let n = usize::try_from(n).map_err(|_| SnapshotError::Truncated { context })?;
        if n.checked_mul(min_item_bytes)
            .is_none_or(|need| need > self.remaining())
        {
            return Err(SnapshotError::Truncated { context });
        }
        Ok(n)
    }
}
