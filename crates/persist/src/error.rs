//! Typed snapshot-load errors. Every way a snapshot can be bad — torn
//! write, bit flip, truncation, version skew, hand-crafted garbage —
//! maps to a variant here; no input to the decoder panics
//! (`tests/snapshot_corpus.rs` fuzzes this contract).

use std::fmt;

/// Why a snapshot could not be written or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The underlying file operation failed (open, read, write, fsync,
    /// rename) — or an injected `snapshot_read` I/O fault.
    Io(String),
    /// The file does not start with the snapshot magic: not a snapshot,
    /// or a torn/zeroed header.
    BadMagic,
    /// The format version is newer (or garbage) — refuse rather than
    /// misread.
    UnsupportedVersion {
        /// The version field as found on disk.
        found: u32,
    },
    /// The file ends mid-structure.
    Truncated {
        /// What the decoder was reading when the bytes ran out.
        context: &'static str,
    },
    /// A checksum does not match its payload: bit rot or a torn write.
    CrcMismatch {
        /// Section tag whose payload failed (`0` = the whole-file
        /// checksum in the header).
        section: u32,
    },
    /// The bytes parse but violate a structural invariant (unsorted
    /// entries, NaN distances, non-permutation ranks, a tree that is
    /// not a tree, …).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::CrcMismatch { section } => {
                if *section == 0 {
                    write!(f, "snapshot file checksum mismatch")
                } else {
                    write!(f, "snapshot section {section} checksum mismatch")
                }
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}
