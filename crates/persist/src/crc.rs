//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
//! checksum gzip and PNG use. Hand-rolled: the build environment is
//! offline and the workspace vendors no checksum crate, and 30 lines of
//! table-driven CRC beat a dependency anyway.

/// Byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"snapshot payload");
        let mut flipped = b"snapshot payload".to_vec();
        for i in 0..flipped.len() * 8 {
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), base, "bit {i} undetected");
            flipped[i / 8] ^= 1 << (i % 8);
        }
    }
}
