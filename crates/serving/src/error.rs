//! Typed serving errors. A query that cannot be answered — torn
//! artifact, exhausted deadline, shed load, injected fault — maps to a
//! variant here; the serving layer never panics at a caller
//! (`tests/serving_corpus.rs` and the fault sweep pin the contract).

use mte_faults::{FaultKind, FaultSite};
use mte_persist::SnapshotError;
use std::fmt;

/// Why a query (or an artifact load) could not be served.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The artifact bytes failed the snapshot store's decode (bad
    /// magic, version skew, truncation, CRC mismatch, malformed
    /// payload) — or an injected `serve_artifact_read` I/O fault.
    Artifact(SnapshotError),
    /// The sections decoded individually but disagree with each other
    /// (length skew, a list that misses its owner or the global
    /// minimum-rank node, tree weights off the radius ladder, …):
    /// structurally invalid even though every CRC is correct.
    Malformed {
        /// First violated cross-section invariant.
        detail: String,
    },
    /// A query named a vertex the artifact does not embed.
    InvalidQuery {
        /// The offending vertex id.
        vertex: u32,
        /// Number of embedded vertices.
        n: usize,
    },
    /// The query's work-unit budget ran out before even the degraded
    /// rung of the answer ladder could run.
    DeadlineExceeded {
        /// The budget that was in force.
        budget: u64,
    },
    /// Admission control shed the query: the bounded in-flight queue
    /// was full.
    Overloaded {
        /// Queries in flight when this one arrived.
        in_flight: u32,
        /// The admission capacity.
        capacity: u32,
    },
    /// A cooperative cancellation token stopped a batch sweep.
    Cancelled {
        /// Dense rows completed before the token was observed.
        rows_done: usize,
    },
    /// An injected fault fired during the query and was not absorbed
    /// (caught unwind or post-query audit of the fired-fault log).
    InjectedFault {
        /// The site that fired.
        site: FaultSite,
        /// The kind that fired.
        kind: FaultKind,
    },
    /// A non-injected panic crossed the query boundary.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Artifact(e) => write!(f, "artifact load failed: {e}"),
            ServeError::Malformed { detail } => {
                write!(f, "artifact sections disagree: {detail}")
            }
            ServeError::InvalidQuery { vertex, n } => {
                write!(f, "query names vertex {vertex}, artifact embeds {n}")
            }
            ServeError::DeadlineExceeded { budget } => {
                write!(f, "work-unit budget {budget} exhausted before any rung")
            }
            ServeError::Overloaded {
                in_flight,
                capacity,
            } => write!(f, "shed: {in_flight} in flight, capacity {capacity}"),
            ServeError::Cancelled { rows_done } => {
                write!(f, "batch cancelled after {rows_done} rows")
            }
            ServeError::InjectedFault { site, kind } => {
                write!(f, "injected fault at {site} ({kind})")
            }
            ServeError::Panicked { message } => write!(f, "query panicked: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> ServeError {
        ServeError::Artifact(e)
    }
}
