//! The per-query answer ladder and its deterministic deadline.
//!
//! A deadline is a **work-unit budget**, never a wall clock: one unit
//! per tree-climb step, one per LE-list entry touched, one per cache
//! probe, one per dense batch row. Identical queries therefore take
//! identical ladder paths on every run and every thread count — which
//! is what lets the fault sweep and the differential suite pin the
//! ladder bit for bit.
//!
//! The ladder (cheapest first, each rung *skipped* when the remaining
//! budget cannot cover its worst-case cost, the fall recorded in the
//! response):
//!
//! 1. **cache hit** — a previously computed exact tree distance;
//! 2. **tree LCA** — leaf-to-leaf climb, bit-identical to
//!    [`FrtTree::leaf_distance`]; the canonical exact answer;
//! 3. **LE-list intersection** — `min_w (d_u(w) + d_v(w))` over common
//!    list nodes, a certified upper bound on the graph distance (both
//!    lists always contain the global minimum-rank node, so the
//!    intersection is never empty);
//! 4. **truncated-list upper bound** — the `Degraded` rung: the shared
//!    tail node plus a budget-capped list prefix, `O(1)` in the worst
//!    case.
//!
//! Only when even rung 4's two-unit floor is unaffordable does the
//! query fail, with [`crate::error::ServeError::DeadlineExceeded`].

use mte_core::frt::{FrtTree, LeList};
use mte_faults::{check_for, trigger_panic, FaultKind, FaultSite};

/// Marker: a [`Meter::charge`] would overdraw the budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted;

/// A query's deterministic deadline: a work-unit budget drawn down by
/// every rung.
#[derive(Clone, Debug)]
pub struct Meter {
    budget: u64,
    spent: u64,
}

impl Meter {
    /// A fresh meter with `budget` work units.
    pub fn new(budget: u64) -> Meter {
        Meter { budget, spent: 0 }
    }

    /// Draws `units` from the budget.
    ///
    /// This is the `serve_query_budget` fault site: every charge is an
    /// arrival, and an injected panic kind aborts the query mid-ladder
    /// (absorbed into a typed error by the guarded front-end).
    pub fn charge(&mut self, units: u64) -> Result<(), BudgetExhausted> {
        if check_for(FaultSite::ServeQueryBudget, &[FaultKind::Panic]).is_some() {
            trigger_panic(FaultSite::ServeQueryBudget);
        }
        self.spent = self.spent.saturating_add(units);
        if self.spent > self.budget {
            Err(BudgetExhausted)
        } else {
            Ok(())
        }
    }

    /// Work units spent so far.
    #[inline]
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Work units left before the deadline.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.budget.saturating_sub(self.spent)
    }

    /// The budget this meter was created with.
    #[inline]
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

/// Which rung of the answer ladder produced a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Served from the sharded cache (an earlier rung-2 answer).
    CacheHit,
    /// Leaf-LCA tree distance — the canonical exact answer.
    TreeLca,
    /// LE-list intersection — an upper bound on the graph distance.
    ListIntersection,
    /// Truncated-list upper bound — the degraded rung.
    Truncated,
}

/// One recorded fall down the answer ladder (the serving twin of
/// `RunReport.degradations`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeDegradation {
    /// A cache hit carried a non-finite value (bit rot or an injected
    /// `serve_cache_entry` poison); the entry was evicted and the
    /// ladder continued as a miss.
    CachePoisonEvicted,
    /// The remaining budget could not cover a worst-case leaf-LCA
    /// climb; fell to the intersection rung.
    TreeLcaSkipped,
    /// The remaining budget could not cover a full list intersection;
    /// fell to the truncated rung.
    IntersectionSkipped,
}

/// A served distance answer with its full ladder provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    /// The distance. Exact tree distance for rungs 1–2; a certified
    /// upper bound on the graph distance for rungs 3–4.
    pub value: f64,
    /// The rung that produced `value`.
    pub rung: Rung,
    /// `true` iff `value` is the exact embedded tree distance.
    pub exact: bool,
    /// Work units the query consumed.
    pub work: u64,
    /// Every ladder fall, in the order it happened.
    pub degradations: Vec<ServeDegradation>,
}

/// Worst-case work units of a leaf-LCA climb: one unit per level the
/// two climbers ascend together.
pub(crate) fn tree_climb_bound(tree: &FrtTree) -> u64 {
    tree.num_levels().saturating_sub(1) as u64
}

/// Metered leaf-LCA climb, bit-identical to
/// [`FrtTree::leaf_distance`]: the same loop, the same accumulation
/// order, one work unit per iteration. The caller checks the budget
/// bound up front, so the mid-climb charge only trips if an injected
/// budget fault rewrote the arithmetic — in which case abandoning is
/// the safe answer.
pub(crate) fn tree_distance_metered(
    tree: &FrtTree,
    u: u32,
    v: u32,
    meter: &mut Meter,
) -> Result<f64, BudgetExhausted> {
    let nodes = tree.nodes();
    let mut a = tree.leaf(u);
    let mut b = tree.leaf(v);
    let mut total = 0.0;
    while nodes[a].level < nodes[b].level {
        meter.charge(1)?;
        total += nodes[a].parent_weight;
        a = nodes[a].parent;
    }
    while nodes[b].level < nodes[a].level {
        meter.charge(1)?;
        total += nodes[b].parent_weight;
        b = nodes[b].parent;
    }
    while a != b {
        meter.charge(1)?;
        total += nodes[a].parent_weight + nodes[b].parent_weight;
        a = nodes[a].parent;
        b = nodes[b].parent;
    }
    Ok(total)
}

/// Exact work units a full intersection of `lu` and `lv` costs.
pub(crate) fn intersection_cost(lu: &LeList, lv: &LeList) -> u64 {
    (lu.len() + lv.len()) as u64
}

/// Metered LE-list intersection: `min_w (d_u(w) + d_v(w))` over the
/// nodes common to both lists — an upper bound on the graph distance
/// (the two shortest paths through `w` concatenate). Never infinite on
/// a validated artifact: both lists end at the global minimum-rank
/// node. One work unit per entry touched.
pub(crate) fn list_intersection_metered(
    lu: &LeList,
    lv: &LeList,
    meter: &mut Meter,
) -> Result<f64, BudgetExhausted> {
    let (short, long) = if lu.len() <= lv.len() {
        (lu, lv)
    } else {
        (lv, lu)
    };
    meter.charge(short.len() as u64)?;
    let mut probe: Vec<(u32, f64)> = short
        .entries()
        .iter()
        .map(|&(w, d)| (w, d.value()))
        .collect();
    probe.sort_unstable_by_key(|&(w, _)| w);
    meter.charge(long.len() as u64)?;
    let mut best = f64::INFINITY;
    for &(w, d) in long.entries() {
        if let Ok(i) = probe.binary_search_by_key(&w, |&(node, _)| node) {
            let candidate = d.value() + probe[i].1;
            if candidate < best {
                best = candidate;
            }
        }
    }
    Ok(best)
}

/// The degraded rung: an upper bound from *truncated* lists. The
/// guaranteed two-unit floor reads the shared tail node (the global
/// minimum-rank node closes every LE list, so `d_u(z) + d_v(z)` is
/// always available in `O(1)`); whatever prefix the remaining budget
/// affords — at most `take` entries per list — can only tighten it.
pub(crate) fn truncated_upper_bound(
    lu: &LeList,
    lv: &LeList,
    take: usize,
    meter: &mut Meter,
) -> Result<f64, BudgetExhausted> {
    meter.charge(2)?;
    let mut best = match (lu.entries().last(), lv.entries().last()) {
        (Some(&(zu, du)), Some(&(zv, dv))) if zu == zv => du.value() + dv.value(),
        // Unreachable on a validated artifact; infinity keeps the
        // bound sound rather than guessing.
        _ => f64::INFINITY,
    };
    let tu = take.min(lu.len());
    let tv = take.min(lv.len());
    if tu > 0 && tv > 0 && meter.charge((tu + tv) as u64).is_ok() {
        let mut probe: Vec<(u32, f64)> = lu.entries()[..tu]
            .iter()
            .map(|&(w, d)| (w, d.value()))
            .collect();
        probe.sort_unstable_by_key(|&(w, _)| w);
        for &(w, d) in &lv.entries()[..tv] {
            if let Ok(i) = probe.binary_search_by_key(&w, |&(node, _)| node) {
                let candidate = d.value() + probe[i].1;
                if candidate < best {
                    best = candidate;
                }
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_trips_exactly_at_the_budget() {
        let mut m = Meter::new(3);
        assert_eq!(m.charge(2), Ok(()));
        assert_eq!(m.charge(1), Ok(()));
        assert_eq!(m.remaining(), 0);
        assert_eq!(m.charge(1), Err(BudgetExhausted));
        // Once overdrawn, every later charge fails too.
        assert_eq!(m.charge(0), Err(BudgetExhausted));
        assert_eq!(m.spent(), 4);
    }
}
