//! `mte_serving` — resilient query-serving layer over frozen metric
//! tree embedding artifacts.
//!
//! The pipeline crates *compute* an FRT-style embedding (LE lists, a
//! random order, a sampled tree); this crate *serves* it. An
//! [`OracleArtifact`] freezes the three sections through the snapshot
//! store's checksummed format and re-validates them against each other
//! on load — zero-trust: torn, truncated, bit-flipped, or
//! CRC-correct-but-skewed inputs all surface as typed [`ServeError`]s,
//! never panics.
//!
//! An [`Oracle`] wraps the artifact with the resilience front-end:
//!
//! - **deterministic deadlines** — per-query *work-unit* budgets, not
//!   wall clocks, so behaviour replays identically under any load or
//!   thread count;
//! - **admission control** — a bounded in-flight counter that sheds
//!   excess arrivals with a typed `Overloaded` instead of queueing
//!   unboundedly;
//! - **a degradation ladder** — cache hit → exact tree LCA → LE-list
//!   intersection → truncated-list upper bound, each fall recorded in
//!   the [`Answer`];
//! - **cooperative cancellation** — batched sweeps through the dense
//!   min-plus kernel poll a [`CancelToken`] between row strides;
//! - **a guarded panic boundary** — injected faults and stray panics
//!   are caught and audited into typed errors, mirroring the
//!   pipeline's `run_guarded`.
//!
//! See `docs/SERVING.md` for the full design and
//! `docs/ROBUSTNESS.md` for how the `serve_*` fault sites are swept.

pub mod artifact;
pub mod batch;
pub mod cache;
pub mod error;
pub mod frontend;
pub mod query;

pub use artifact::OracleArtifact;
pub use batch::CancelToken;
pub use cache::CacheStats;
pub use error::ServeError;
pub use frontend::{BatchAnswer, Oracle, ServeConfig};
pub use query::{Answer, Rung, ServeDegradation};
