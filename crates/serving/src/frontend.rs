//! The resilience front-end: admission control, the guarded panic
//! boundary, and the [`Oracle`] that walks the answer ladder.
//!
//! Three layers wrap every query:
//!
//! - **Admission** — a bounded in-flight counter; arrivals beyond the
//!   capacity are shed immediately with a typed
//!   [`ServeError::Overloaded`], never queued unboundedly.
//! - **Guard** — the query body runs under `catch_unwind` plus a
//!   post-query audit of the fault registry's fired log, the same
//!   containment the pipeline's `run_guarded` uses: an injected panic
//!   becomes [`ServeError::InjectedFault`], any other panic becomes
//!   [`ServeError::Panicked`]. Nothing unwinds past the oracle.
//! - **Ladder** — the deadline-governed rung walk documented in
//!   [`crate::query`].

use crate::artifact::OracleArtifact;
use crate::batch::{batch_tree_distances, CancelToken};
use crate::cache::{pair_key, CacheStats, Probe, ShardedCache};
use crate::error::ServeError;
use crate::query::{
    intersection_cost, list_intersection_metered, tree_climb_bound, tree_distance_metered,
    truncated_upper_bound, Answer, Meter, Rung, ServeDegradation,
};
use mte_faults::{fired_serial, first_unhandled_since, InjectedPanic};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};

/// Serving knobs. The defaults are generous enough that every rung is
/// affordable on the benchmark graphs; tests shrink them to force
/// ladder falls deterministically.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Work-unit budget per point query.
    pub query_budget: u64,
    /// Work-unit budget per source in a batch sweep.
    pub batch_budget_per_query: u64,
    /// LE-list prefix length the degraded rung may inspect.
    pub truncate_len: usize,
    /// Cache shard count.
    pub cache_shards: usize,
    /// LRU capacity per shard.
    pub cache_per_shard: usize,
    /// Admission capacity: maximum queries in flight at once.
    pub max_in_flight: u32,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            query_budget: 4096,
            batch_budget_per_query: 4096,
            truncate_len: 8,
            cache_shards: 8,
            cache_per_shard: 512,
            max_in_flight: 256,
        }
    }
}

/// Bounded in-flight admission counter.
#[derive(Debug)]
struct Admission {
    in_flight: AtomicU32,
    capacity: u32,
}

/// RAII in-flight slot; releases on drop, panic or not.
struct Permit<'a> {
    admission: &'a Admission,
}

impl Admission {
    fn new(capacity: u32) -> Admission {
        Admission {
            in_flight: AtomicU32::new(0),
            capacity,
        }
    }

    fn admit(&self) -> Result<Permit<'_>, ServeError> {
        let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.capacity {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(ServeError::Overloaded {
                in_flight: prev,
                capacity: self.capacity,
            });
        }
        Ok(Permit { admission: self })
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.admission.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Runs a query body behind the serving panic boundary: snapshot the
/// fault registry's fired serial, catch any unwind, and audit the log
/// afterwards so an injected fault that fired without being absorbed
/// surfaces as a typed error rather than a silent success.
fn guarded<T>(body: impl FnOnce() -> Result<T, ServeError>) -> Result<T, ServeError> {
    let serial = fired_serial();
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(value)) => match first_unhandled_since(serial) {
            Some(fired) => Err(ServeError::InjectedFault {
                site: fired.site,
                kind: fired.kind,
            }),
            None => Ok(value),
        },
        Ok(Err(e)) => Err(e),
        Err(payload) => {
            if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
                return Err(ServeError::InjectedFault {
                    site: injected.site,
                    kind: mte_faults::FaultKind::Panic,
                });
            }
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(ServeError::Panicked { message })
        }
    }
}

/// A batched sweep's result with its work accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchAnswer {
    /// `distances[i][v]` = exact tree distance from `sources[i]` to
    /// vertex `v`.
    pub distances: Vec<Vec<f64>>,
    /// Work units the sweep consumed.
    pub work: u64,
}

/// The deadline-governed, load-shedding distance oracle.
#[derive(Debug)]
pub struct Oracle {
    artifact: OracleArtifact,
    cache: ShardedCache,
    admission: Admission,
    config: ServeConfig,
}

impl Oracle {
    /// Wraps a validated artifact with the default serving knobs.
    pub fn new(artifact: OracleArtifact) -> Oracle {
        Oracle::with_config(artifact, ServeConfig::default())
    }

    /// Loads, validates, and wraps an encoded artifact image behind the
    /// guarded boundary: even an injected panic inside the decode path
    /// surfaces as a typed [`ServeError`], never an unwind.
    pub fn load(bytes: &[u8], config: ServeConfig) -> Result<Oracle, ServeError> {
        let artifact = guarded(|| OracleArtifact::decode(bytes))?;
        Ok(Oracle::with_config(artifact, config))
    }

    /// Wraps a validated artifact with explicit knobs.
    pub fn with_config(artifact: OracleArtifact, config: ServeConfig) -> Oracle {
        Oracle {
            cache: ShardedCache::new(config.cache_shards, config.cache_per_shard),
            admission: Admission::new(config.max_in_flight),
            artifact,
            config,
        }
    }

    /// The artifact this oracle serves.
    #[inline]
    pub fn artifact(&self) -> &OracleArtifact {
        &self.artifact
    }

    /// Aggregated cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Queries currently in flight (racy snapshot, for telemetry).
    pub fn in_flight(&self) -> u32 {
        self.admission.in_flight.load(Ordering::Acquire)
    }

    fn validate_vertex(&self, v: u32) -> Result<(), ServeError> {
        let n = self.artifact.n();
        if (v as usize) < n {
            Ok(())
        } else {
            Err(ServeError::InvalidQuery { vertex: v, n })
        }
    }

    /// Serves one point query `dist_T(u, v)` through the full stack:
    /// validation, admission, guard, ladder.
    pub fn distance(&self, u: u32, v: u32) -> Result<Answer, ServeError> {
        self.validate_vertex(u)?;
        self.validate_vertex(v)?;
        let _permit = self.admission.admit()?;
        guarded(|| self.answer(u, v))
    }

    /// The ladder walk (see [`crate::query`] for the rung contract).
    fn answer(&self, u: u32, v: u32) -> Result<Answer, ServeError> {
        let budget = self.config.query_budget;
        let mut meter = Meter::new(budget);
        let mut degradations = Vec::new();
        let deadline = |meter: &Meter| ServeError::DeadlineExceeded {
            budget: meter.budget(),
        };

        // Rung 1: cache. One unit per probe.
        let key = pair_key(u, v, self.artifact.n());
        meter.charge(1).map_err(|_| deadline(&meter))?;
        match self.cache.probe(key) {
            Probe::Hit(value) => {
                return Ok(Answer {
                    value,
                    rung: Rung::CacheHit,
                    exact: true,
                    work: meter.spent(),
                    degradations,
                });
            }
            Probe::PoisonEvicted => degradations.push(ServeDegradation::CachePoisonEvicted),
            Probe::Miss => {}
        }

        // Rung 2: exact leaf-LCA climb — only if the worst case fits,
        // so a mid-rung abandonment can't strand the lower rungs.
        let tree = self.artifact.tree();
        if meter.remaining() >= tree_climb_bound(tree) {
            if let Ok(value) = tree_distance_metered(tree, u, v, &mut meter) {
                self.cache.insert(key, value);
                return Ok(Answer {
                    value,
                    rung: Rung::TreeLca,
                    exact: true,
                    work: meter.spent(),
                    degradations,
                });
            }
        } else {
            degradations.push(ServeDegradation::TreeLcaSkipped);
        }

        // Rung 3: full LE-list intersection (upper bound on d_G).
        let lu = &self.artifact.le_lists()[u as usize];
        let lv = &self.artifact.le_lists()[v as usize];
        if meter.remaining() >= intersection_cost(lu, lv) {
            if let Ok(value) = list_intersection_metered(lu, lv, &mut meter) {
                return Ok(Answer {
                    value,
                    rung: Rung::ListIntersection,
                    exact: false,
                    work: meter.spent(),
                    degradations,
                });
            }
        } else {
            degradations.push(ServeDegradation::IntersectionSkipped);
        }

        // Rung 4: degraded truncated-list bound (two-unit floor).
        if meter.remaining() >= 2 {
            if let Ok(value) = truncated_upper_bound(lu, lv, self.config.truncate_len, &mut meter) {
                return Ok(Answer {
                    value,
                    rung: Rung::Truncated,
                    exact: false,
                    work: meter.spent(),
                    degradations,
                });
            }
        }
        Err(deadline(&meter))
    }

    /// Serves a batched sweep: exact tree distances from every source
    /// to every vertex, through the dense block kernel. The budget
    /// scales with the batch (`batch_budget_per_query × sources`).
    pub fn batch_distances(
        &self,
        sources: &[u32],
        token: &CancelToken,
    ) -> Result<BatchAnswer, ServeError> {
        for &s in sources {
            self.validate_vertex(s)?;
        }
        let _permit = self.admission.admit()?;
        let budget = self
            .config
            .batch_budget_per_query
            .saturating_mul(sources.len() as u64);
        guarded(|| {
            let mut meter = Meter::new(budget);
            let distances = batch_tree_distances(&self.artifact, sources, token, &mut meter)?;
            Ok(BatchAnswer {
                distances,
                work: meter.spent(),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_sheds_beyond_capacity() {
        let admission = Admission::new(2);
        let p1 = match admission.admit() {
            Ok(p) => p,
            Err(e) => panic!("first admit shed: {e}"),
        };
        let p2 = match admission.admit() {
            Ok(p) => p,
            Err(e) => panic!("second admit shed: {e}"),
        };
        assert!(matches!(
            admission.admit(),
            Err(ServeError::Overloaded {
                in_flight: 2,
                capacity: 2
            })
        ));
        drop(p1);
        let p3 = admission.admit();
        assert!(p3.is_ok());
        drop(p2);
        drop(p3);
        assert_eq!(admission.in_flight.load(Ordering::Acquire), 0);
    }

    #[test]
    fn guard_absorbs_plain_panics() {
        let out: Result<(), ServeError> = guarded(|| panic!("boom"));
        assert_eq!(
            out,
            Err(ServeError::Panicked {
                message: "boom".to_string()
            })
        );
    }
}
