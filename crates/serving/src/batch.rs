//! Batched distance sweeps through the dense min-plus block kernel.
//!
//! A batch asks for the tree distance from `k` source vertices to
//! *every* vertex. Instead of `k·n` pointer-chasing climbs, the sweep
//! runs one dense pass over the tree:
//!
//! 1. **Up-pass** — for each source, walk its leaf-to-root chain and
//!    record, per tree node, the *level* at which the chain passes
//!    through it (a [`MinPlus`] cell; untouched nodes stay at ⊥ = ∞).
//! 2. **Down-pass** — one forward sweep over the node-major
//!    [`DenseBlock`] (parents precede children in the tree's node
//!    layout), relaxing each parent row into its child's row with
//!    weight `0`. After the sweep, the cell at (leaf of `v`, source
//!    `i`) holds the level of the lowest common ancestor of `v` and
//!    source `i` — computed with only `min` and `+0.0`, both exact in
//!    IEEE arithmetic.
//! 3. **Map** — the LCA level indexes the artifact's climb table,
//!    which replays `node_distance`'s accumulation order; the result
//!    is bit-identical to a point query's leaf-LCA climb.
//!
//! The sweep is metered (one work unit per chain step and per dense
//! row) and cooperatively cancellable between row strides.

use crate::artifact::OracleArtifact;
use crate::error::ServeError;
use crate::query::Meter;
use mte_algebra::dense::{relax_row_into, DenseBlock};
use mte_algebra::MinPlus;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many dense rows the down-pass relaxes between cancellation
/// checks. Small enough to stop promptly, large enough that the atomic
/// load never shows up in a profile.
const CANCEL_STRIDE: usize = 64;

/// A cooperative cancellation token: cloned into a batch sweep, which
/// polls it between row strides and abandons with a typed
/// [`ServeError::Cancelled`] when set.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unset token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// One batched sweep: `out[i][v]` = exact tree distance from
/// `sources[i]` to vertex `v`, bit-identical to
/// [`mte_core::frt::FrtTree::leaf_distance`]. The caller validates the
/// source ids.
pub(crate) fn batch_tree_distances(
    artifact: &OracleArtifact,
    sources: &[u32],
    token: &CancelToken,
    meter: &mut Meter,
) -> Result<Vec<Vec<f64>>, ServeError> {
    let tree = artifact.tree();
    let climb = artifact.climb();
    let n = artifact.n();
    let k = sources.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    let budget = meter.budget();
    let budget_err = move || ServeError::DeadlineExceeded { budget };

    let mut block = DenseBlock::<MinPlus>::new(tree.len(), k);
    let cols = block.cols();
    let nodes = tree.nodes();

    // Up-pass: mark each source's leaf-to-root chain with the level at
    // which the chain enters each node.
    for (i, &s) in sources.iter().enumerate() {
        let mut a = tree.leaf(s);
        loop {
            meter.charge(1).map_err(|_| budget_err())?;
            let cell = &mut block.row_mut(a as u32)[i];
            let level = MinPlus::new(nodes[a].level as f64);
            if level.0 < cell.0 {
                *cell = level;
            }
            if a == 0 {
                break;
            }
            a = nodes[a].parent;
        }
    }

    // Down-pass: parents precede children in the node layout (the root
    // is index 0), so a single forward sweep propagates every chain
    // mark down to all leaves below it. Relaxing with weight 0 keeps
    // the arithmetic exact: `min` and `+0.0` never round.
    let values = block.values_mut();
    for idx in 1..tree.len() {
        if idx % CANCEL_STRIDE == 0 && token.is_cancelled() {
            return Err(ServeError::Cancelled { rows_done: idx });
        }
        meter.charge(1).map_err(|_| budget_err())?;
        let parent = nodes[idx].parent;
        let (upper, lower) = values.split_at_mut(idx * cols);
        relax_row_into(
            &mut lower[..cols],
            &upper[parent * cols..(parent + 1) * cols],
            MinPlus::new(0.0),
        );
    }

    // Map: LCA level → climbed distance, through the climb table that
    // replays node_distance's exact fold.
    let mut out = vec![vec![0.0f64; n]; k];
    for v in 0..n as u32 {
        let leaf_row = block.row(tree.leaf(v) as u32);
        for (i, row) in out.iter_mut().enumerate() {
            let level = leaf_row[i].0.value();
            row[v as usize] = if level.is_finite() && (level as usize) < climb.len() {
                climb[level as usize]
            } else {
                f64::INFINITY
            };
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }
}
