//! The frozen oracle artifact: an immutable, validated bundle of LE
//! lists + random order + FRT tree from a finished run, serialized
//! through `mte_persist`'s checksummed sections (`LeLists` / `Ranks` /
//! `FrtTree`).
//!
//! Loading is **zero-trust**: the snapshot store already rejects torn,
//! truncated, bit-flipped and per-section malformed images with a typed
//! [`SnapshotError`]; on top of that, [`OracleArtifact::from_parts`]
//! cross-validates the sections *against each other* — length skew, a
//! list missing its owner or the global minimum-rank node, unsorted
//! distances, tree edge weights off the radius ladder. Bytes that pass
//! every CRC can still not materialize an artifact whose queries panic,
//! loop, or silently answer wrong; every rejection is a typed
//! [`ServeError`].

use crate::error::ServeError;
use mte_core::frt::{FrtEmbedding, FrtTree, LeList, Ranks};
use mte_faults::{check_for, check_handled, trigger_panic, FaultKind, FaultSite};
use mte_persist::{SnapshotError, SnapshotReader, SnapshotWriter};
use std::path::Path;

/// A validated, immutable distance-oracle artifact.
#[derive(Clone, Debug)]
pub struct OracleArtifact {
    lists: Vec<LeList>,
    ranks: Ranks,
    tree: FrtTree,
    /// `climb[l]` = tree distance between two leaves whose LCA sits at
    /// level `l`, accumulated in exactly the fold order
    /// [`FrtTree::node_distance`] uses — the batch sweep's lookup table
    /// is therefore bit-identical to the point rung.
    climb: Vec<f64>,
}

impl OracleArtifact {
    /// Freezes a finished embedding into an artifact.
    pub fn from_embedding(emb: &FrtEmbedding) -> Result<OracleArtifact, ServeError> {
        OracleArtifact::from_parts(
            emb.le_lists().to_vec(),
            emb.ranks().clone(),
            emb.tree().clone(),
        )
    }

    /// Assembles and validates an artifact from raw parts. Every
    /// cross-section inconsistency is a typed error; a returned
    /// artifact can serve any query without panicking.
    pub fn from_parts(
        lists: Vec<LeList>,
        ranks: Ranks,
        tree: FrtTree,
    ) -> Result<OracleArtifact, ServeError> {
        validate(&lists, &ranks, &tree)?;
        let radii = tree.radii();
        let mut climb = vec![0.0f64; radii.len()];
        for l in 1..radii.len() {
            // The per-level increment of `node_distance` for two
            // level-aligned climbers: both parent edges weigh r_l.
            climb[l] = climb[l - 1] + (radii[l] + radii[l]);
        }
        Ok(OracleArtifact {
            lists,
            ranks,
            tree,
            climb,
        })
    }

    /// Decodes and validates an artifact image.
    ///
    /// This is the `serve_artifact_read` fault site: an injected
    /// [`FaultKind::Io`] surfaces as a typed
    /// [`ServeError::Artifact`] (absorbed, like `snapshot_read`'s); an
    /// injected panic kind aborts the load (absorbed into a typed
    /// error by the guarded front-end).
    pub fn decode(bytes: &[u8]) -> Result<OracleArtifact, ServeError> {
        if check_for(FaultSite::ServeArtifactRead, &[FaultKind::Panic]).is_some() {
            trigger_panic(FaultSite::ServeArtifactRead);
        }
        if check_handled(FaultSite::ServeArtifactRead, &[FaultKind::Io]).is_some() {
            return Err(ServeError::Artifact(SnapshotError::Io(
                "injected I/O failure".to_string(),
            )));
        }
        let reader = SnapshotReader::decode(bytes)?;
        let lists = reader.le_lists()?;
        let ranks = reader.ranks()?;
        let tree = reader.frt_tree()?;
        OracleArtifact::from_parts(lists, ranks, tree)
    }

    /// Reads and validates an artifact file.
    pub fn read_from(path: &Path) -> Result<OracleArtifact, ServeError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ServeError::Artifact(SnapshotError::Io(e.to_string())))?;
        OracleArtifact::decode(&bytes)
    }

    /// The encoded snapshot image (sections `LeLists`, `Ranks`,
    /// `FrtTree`).
    pub fn encode(&self) -> Vec<u8> {
        self.writer().encode()
    }

    /// Crash-safe write through the snapshot store's atomic protocol.
    pub fn write_to(&self, path: &Path) -> Result<(), ServeError> {
        self.writer().write_to(path).map_err(ServeError::Artifact)
    }

    fn writer(&self) -> SnapshotWriter {
        let mut w = SnapshotWriter::new();
        w.put_le_lists(&self.lists)
            .put_ranks(&self.ranks)
            .put_frt_tree(&self.tree);
        w
    }

    /// Number of embedded graph vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.ranks.n()
    }

    /// The LE lists (one per vertex, validated).
    #[inline]
    pub fn le_lists(&self) -> &[LeList] {
        &self.lists
    }

    /// The random order the LE lists are relative to.
    #[inline]
    pub fn ranks(&self) -> &Ranks {
        &self.ranks
    }

    /// The sampled FRT tree.
    #[inline]
    pub fn tree(&self) -> &FrtTree {
        &self.tree
    }

    /// The leaf-pair distance ladder by LCA level (see field docs).
    #[inline]
    pub(crate) fn climb(&self) -> &[f64] {
        &self.climb
    }
}

/// Cross-section validation (see module docs). Returns the first
/// violated invariant as a typed error.
fn validate(lists: &[LeList], ranks: &Ranks, tree: &FrtTree) -> Result<(), ServeError> {
    let n = ranks.n();
    let malformed = |detail: String| Err(ServeError::Malformed { detail });
    if n == 0 {
        return malformed("empty rank permutation".to_string());
    }
    if lists.len() != n {
        return malformed(format!("{} LE lists for {n} ranked vertices", lists.len()));
    }
    if tree.num_vertices() != n {
        return malformed(format!(
            "tree embeds {} vertices, ranks cover {n}",
            tree.num_vertices()
        ));
    }
    let min_rank_node = ranks.min_rank_node();
    for (v, list) in lists.iter().enumerate() {
        let entries = list.entries();
        let Some((&(first, d0), &(last, _))) = entries.first().zip(entries.last()) else {
            return malformed(format!("vertex {v} has an empty LE list"));
        };
        if first as usize != v || d0.value() != 0.0 {
            return malformed(format!(
                "vertex {v}'s list does not start with its owner at distance 0"
            ));
        }
        if last != min_rank_node {
            return malformed(format!(
                "vertex {v}'s list does not end at the global minimum-rank node"
            ));
        }
        let mut prev_dist = f64::NEG_INFINITY;
        let mut prev_rank = u32::MAX;
        for &(w, d) in entries {
            if w as usize >= n {
                return malformed(format!("vertex {v}'s list names node {w} (n = {n})"));
            }
            let dv = d.value();
            if !dv.is_finite() || dv < prev_dist {
                return malformed(format!(
                    "vertex {v}'s list distances are not finite ascending"
                ));
            }
            let r = ranks.rank(w);
            if r >= prev_rank && entries.len() > 1 {
                return malformed(format!(
                    "vertex {v}'s list ranks are not strictly decreasing"
                ));
            }
            prev_dist = dv;
            prev_rank = r;
        }
    }
    // The snapshot decoder's `FrtTree::from_parts` already enforces the
    // tree-shape invariants (level ladder, finite positive weights,
    // valid leaf indices). What it cannot know is that the weights sit
    // on the radius ladder — which is what makes the batch sweep's
    // climb table bit-identical to a leaf-to-leaf climb.
    let radii = tree.radii();
    for (i, node) in tree.nodes().iter().enumerate() {
        let expected = if i == 0 {
            0.0
        } else {
            match radii.get(node.level as usize + 1) {
                Some(&r) => r,
                None => {
                    return malformed(format!("tree node {i} sits above the radius ladder"));
                }
            }
        };
        if node.parent_weight != expected {
            return malformed(format!(
                "tree node {i} parent weight {} is off the radius ladder (want {expected})",
                node.parent_weight
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_core::frt::le_lists_direct;
    use mte_graph::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn sample_parts() -> (Vec<LeList>, Ranks, FrtTree) {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gnm_graph(24, 60, 1.0..6.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (lists, _, _) = le_lists_direct(&g, &ranks);
        let tree = FrtTree::from_le_lists(&lists, &ranks, 1.25, g.min_weight());
        (lists, Ranks::clone(&ranks), tree)
    }

    #[test]
    fn roundtrip_preserves_answers() {
        let (lists, ranks, tree) = sample_parts();
        let art = match OracleArtifact::from_parts(lists, ranks, tree) {
            Ok(a) => a,
            Err(e) => panic!("valid parts rejected: {e}"),
        };
        let back = match OracleArtifact::decode(&art.encode()) {
            Ok(a) => a,
            Err(e) => panic!("own encoding rejected: {e}"),
        };
        for u in 0..art.n() as u32 {
            for v in 0..u {
                assert_eq!(
                    back.tree().leaf_distance(u, v),
                    art.tree().leaf_distance(u, v)
                );
            }
        }
    }

    #[test]
    fn length_skew_is_typed() {
        let (mut lists, ranks, tree) = sample_parts();
        lists.pop();
        assert!(matches!(
            OracleArtifact::from_parts(lists, ranks, tree),
            Err(ServeError::Malformed { .. })
        ));
    }

    #[test]
    fn climb_table_matches_node_distance() {
        let (lists, ranks, tree) = sample_parts();
        let art = match OracleArtifact::from_parts(lists, ranks, tree) {
            Ok(a) => a,
            Err(e) => panic!("valid parts rejected: {e}"),
        };
        // Every leaf pair: the table entry at the LCA level equals the
        // climbed distance bit for bit.
        let tree = art.tree();
        for u in 0..art.n() as u32 {
            for v in 0..art.n() as u32 {
                let mut a = tree.leaf(u);
                let mut b = tree.leaf(v);
                while a != b {
                    a = tree.nodes()[a].parent;
                    b = tree.nodes()[b].parent;
                }
                let lca_level = tree.nodes()[a].level as usize;
                assert_eq!(
                    art.climb()[lca_level],
                    tree.leaf_distance(u, v),
                    "({u},{v})"
                );
            }
        }
    }
}
