//! Sharded LRU distance cache with poisoned-entry detection.
//!
//! Only rung-2 (exact leaf-LCA) answers are inserted, so a healthy hit
//! is always bit-identical to [`mte_core::frt::FrtTree::leaf_distance`].
//! Every probe re-checks the stored value: a non-finite payload —
//! whether from genuine memory corruption or an injected
//! `serve_cache_entry` `poison_nan` fault — is evicted on the spot and
//! reported as a `Probe::PoisonEvicted` miss, so a poisoned cache can
//! degrade throughput but never an answer.

use mte_faults::{check_for, check_handled, trigger_panic, FaultKind, FaultSite};
use std::sync::Mutex;

/// Outcome of a cache probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Probe {
    /// A healthy entry; the cached exact distance.
    Hit(f64),
    /// The entry was present but carried a non-finite value; it has
    /// been evicted and the caller must recompute.
    PoisonEvicted,
    /// No entry.
    Miss,
}

/// Aggregated cache counters (monotone over the oracle's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Healthy probe hits.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Probes that found a poisoned entry and evicted it.
    pub poison_evicted: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

/// One shard: a small LRU list, most-recently-used at the back.
#[derive(Debug, Default)]
struct Shard {
    entries: Vec<(u64, f64)>,
    hits: u64,
    misses: u64,
    poisoned: u64,
}

/// The sharded cache. Shard count and per-shard capacity are fixed at
/// construction; locking is per shard, so concurrent queries on
/// different shards never contend.
#[derive(Debug)]
pub(crate) struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
}

/// Canonical unordered-pair key for vertices `u`, `v` of an
/// `n`-vertex artifact.
#[inline]
pub(crate) fn pair_key(u: u32, v: u32, n: usize) -> u64 {
    let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
    lo as u64 * n as u64 + hi as u64
}

impl ShardedCache {
    pub(crate) fn new(shards: usize, per_shard: usize) -> ShardedCache {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Locks a shard, recovering from a poisoned mutex: the guarded
    /// front-end already converted any panic into a typed error, and
    /// shard state is self-validating (every probe re-checks its
    /// entry), so the inner data is safe to reuse.
    fn lock(mutex: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
        match mutex.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Probes for `key`.
    ///
    /// This is the `serve_cache_entry` fault site: every probe is an
    /// arrival. An injected `poison_nan` corrupts the probed entry
    /// *before* the health check runs — which is exactly what the
    /// poisoned-entry scan exists to absorb.
    pub(crate) fn probe(&self, key: u64) -> Probe {
        if check_for(FaultSite::ServeCacheEntry, &[FaultKind::Panic]).is_some() {
            trigger_panic(FaultSite::ServeCacheEntry);
        }
        let mut shard = ShardedCache::lock(self.shard(key));
        let Some(idx) = shard.entries.iter().position(|&(k, _)| k == key) else {
            shard.misses += 1;
            return Probe::Miss;
        };
        let mut value = shard.entries[idx].1;
        if check_handled(FaultSite::ServeCacheEntry, &[FaultKind::PoisonNan]).is_some() {
            value = f64::NAN;
        }
        if !value.is_finite() {
            shard.entries.remove(idx);
            shard.poisoned += 1;
            return Probe::PoisonEvicted;
        }
        // LRU touch: move to the back.
        let entry = shard.entries.remove(idx);
        shard.entries.push(entry);
        shard.hits += 1;
        Probe::Hit(value)
    }

    /// Inserts (or refreshes) `key → value`. Non-finite values are
    /// refused outright — the cache only ever holds answers it could
    /// legitimately serve.
    pub(crate) fn insert(&self, key: u64, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut shard = ShardedCache::lock(self.shard(key));
        if let Some(idx) = shard.entries.iter().position(|&(k, _)| k == key) {
            shard.entries.remove(idx);
        }
        shard.entries.push((key, value));
        if shard.entries.len() > self.per_shard {
            shard.entries.remove(0);
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for mutex in &self.shards {
            let shard = ShardedCache::lock(mutex);
            out.hits += shard.hits;
            out.misses += shard.misses;
            out.poison_evicted += shard.poisoned;
            out.entries += shard.entries.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_the_oldest_untouched_key() {
        let cache = ShardedCache::new(1, 2);
        cache.insert(1, 10.0);
        cache.insert(2, 20.0);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert_eq!(cache.probe(1), Probe::Hit(10.0));
        cache.insert(3, 30.0);
        assert_eq!(cache.probe(2), Probe::Miss);
        assert_eq!(cache.probe(1), Probe::Hit(10.0));
        assert_eq!(cache.probe(3), Probe::Hit(30.0));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn non_finite_values_never_enter() {
        let cache = ShardedCache::new(2, 4);
        cache.insert(7, f64::NAN);
        cache.insert(8, f64::INFINITY);
        assert_eq!(cache.probe(7), Probe::Miss);
        assert_eq!(cache.probe(8), Probe::Miss);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn pair_key_is_symmetric_and_injective_on_pairs() {
        let n = 9;
        assert_eq!(pair_key(3, 5, n), pair_key(5, 3, n));
        let mut seen = std::collections::HashSet::new();
        for u in 0..n as u32 {
            for v in u..n as u32 {
                assert!(seen.insert(pair_key(u, v, n)), "({u},{v}) collides");
            }
        }
    }
}
