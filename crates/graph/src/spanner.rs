//! The Baswana–Sen randomized `(2k−1)`-spanner \[8\].
//!
//! Given `G = (V, E, ω)` and `k ≥ 1`, computes `E' ⊆ E` such that
//! `G' = (V, E', ω)` satisfies
//! `dist(v,w,G) ≤ dist(v,w,G') ≤ (2k−1)·dist(v,w,G)` with
//! `|E'| ∈ O(k·n^{1+1/k})` in expectation. The paper uses this to trade
//! stretch for work in Theorem 6.2 and Corollary 7.11.

use crate::graph::Graph;
use mte_algebra::NodeId;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

const UNCLUSTERED: NodeId = NodeId::MAX;

/// Computes a `(2k−1)`-spanner of `g`, returned as a subgraph. `k = 1`
/// returns the graph itself (stretch 1).
pub fn baswana_sen_spanner(g: &Graph, k: usize, rng: &mut impl Rng) -> Graph {
    assert!(k >= 1);
    if k == 1 {
        return g.clone();
    }
    let n = g.n();
    let sample_p = (n as f64).powf(-1.0 / k as f64);

    // cluster[v]: id of the cluster (its center) v currently belongs to,
    // or UNCLUSTERED once v has resolved all its remaining edges.
    let mut cluster: Vec<NodeId> = (0..n as NodeId).collect();
    // Active inter-cluster edges, as (u, v, w) with u < v.
    let mut active: Vec<(NodeId, NodeId, f64)> = g.edges().collect();
    let mut spanner: Vec<(NodeId, NodeId, f64)> = Vec::new();

    // Phases 1 .. k−1: sample cluster centers, re-cluster vertices.
    for _phase in 1..k {
        // Which current clusters survive to the next level? Ordered map:
        // entries are *created* in vertex order (so the rng draw sequence
        // is deterministic either way), but iteration must be too.
        let mut sampled: BTreeMap<NodeId, bool> = BTreeMap::new();
        for v in 0..n {
            let c = cluster[v];
            if c != UNCLUSTERED {
                sampled.entry(c).or_insert_with(|| rng.gen_bool(sample_p));
            }
        }

        // Per-vertex adjacency among the active edges.
        let mut incident: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
        for &(u, v, w) in &active {
            incident[u as usize].push((v, w));
            incident[v as usize].push((u, w));
        }

        let mut new_cluster = cluster.clone();
        // discard[v] is set when v resolved all its incident active edges.
        let mut discard_all = vec![false; n];
        // Edges (v, to-cluster) that are settled this phase.
        let mut settled: Vec<(NodeId, NodeId)> = Vec::new(); // (vertex, other-cluster)

        for v in 0..n as NodeId {
            let c = cluster[v as usize];
            if c == UNCLUSTERED || *sampled.get(&c).unwrap_or(&false) {
                continue; // vertices in sampled clusters keep everything
            }
            // Group v's active edges by the other endpoint's cluster and
            // keep the lightest edge per neighboring cluster. Ordered map:
            // `lightest.values()` below appends spanner edges in cluster
            // order — with a hash map the spanner's *edge order* (and so
            // the adjacency order of everything built on it) would depend
            // on hash state.
            let mut lightest: BTreeMap<NodeId, (NodeId, f64)> = BTreeMap::new();
            for &(u, w) in &incident[v as usize] {
                let cu = cluster[u as usize];
                if cu == UNCLUSTERED || cu == c {
                    continue;
                }
                let e = lightest.entry(cu).or_insert((u, w));
                if w < e.1 || (w == e.1 && u < e.0) {
                    *e = (u, w);
                }
            }
            // Lightest edge into a *sampled* neighboring cluster, if any.
            let best_sampled = lightest
                .iter()
                .filter(|(cu, _)| *sampled.get(cu).unwrap_or(&false))
                .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1).then(a.0.cmp(b.0)))
                .map(|(cu, &(u, w))| (*cu, u, w));

            match best_sampled {
                None => {
                    // Not adjacent to any sampled cluster: add the lightest
                    // edge to every neighboring cluster, then retire v.
                    for &(u, w) in lightest.values() {
                        spanner.push((v.min(u), v.max(u), w));
                    }
                    discard_all[v as usize] = true;
                    new_cluster[v as usize] = UNCLUSTERED;
                }
                Some((cu_star, u_star, w_star)) => {
                    // Join the nearest sampled cluster ...
                    spanner.push((v.min(u_star), v.max(u_star), w_star));
                    new_cluster[v as usize] = cu_star;
                    settled.push((v, cu_star));
                    // ... and add the lightest edge to every *strictly
                    // closer* neighboring cluster, settling those too.
                    for (cu, &(u, w)) in &lightest {
                        if *cu != cu_star && w < w_star {
                            spanner.push((v.min(u), v.max(u), w));
                            settled.push((v, *cu));
                        }
                    }
                }
            }
        }

        let settled_set: BTreeSet<(NodeId, NodeId)> = settled.into_iter().collect();
        let old_cluster = cluster;
        cluster = new_cluster;

        // Rebuild the active edge set: drop edges of retired vertices,
        // intra-cluster edges (w.r.t. the *new* clustering), and edges
        // settled above (vertex → old cluster of the other endpoint).
        active.retain(|&(u, v, _)| {
            if discard_all[u as usize] || discard_all[v as usize] {
                return false;
            }
            let (cu, cv) = (cluster[u as usize], cluster[v as usize]);
            if cu == UNCLUSTERED || cv == UNCLUSTERED || cu == cv {
                return false;
            }
            if settled_set.contains(&(u, old_cluster[v as usize]))
                || settled_set.contains(&(v, old_cluster[u as usize]))
            {
                return false;
            }
            true
        });
    }

    // Final phase: every vertex adds its lightest edge to each neighboring
    // cluster.
    let mut incident: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
    for &(u, v, w) in &active {
        incident[u as usize].push((v, w));
        incident[v as usize].push((u, w));
    }
    for v in 0..n as NodeId {
        // Ordered for the same reason as the per-phase `lightest` above.
        let mut lightest: BTreeMap<NodeId, (NodeId, f64)> = BTreeMap::new();
        for &(u, w) in &incident[v as usize] {
            let cu = cluster[u as usize];
            if cu == UNCLUSTERED || cu == cluster[v as usize] {
                continue;
            }
            let e = lightest.entry(cu).or_insert((u, w));
            if w < e.1 || (w == e.1 && u < e.0) {
                *e = (u, w);
            }
        }
        for &(u, w) in lightest.values() {
            spanner.push((v.min(u), v.max(u), w));
        }
    }

    Graph::from_edges(n, spanner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{apsp, is_connected};
    use crate::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_spanner_stretch(g: &Graph, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sp = baswana_sen_spanner(g, k, &mut rng);
        assert!(sp.m() <= g.m());
        assert!(is_connected(&sp), "spanner must stay connected");
        let dg = apsp(g);
        let ds = apsp(&sp);
        let bound = (2 * k - 1) as f64 + 1e-9;
        for u in 0..g.n() {
            for v in 0..g.n() {
                let a = dg[u][v].value();
                let b = ds[u][v].value();
                assert!(b >= a - 1e-9, "spanner may not shorten distances");
                assert!(
                    b <= a * bound,
                    "stretch violated at ({u},{v}): {b} > {bound} * {a}"
                );
            }
        }
    }

    #[test]
    fn k1_returns_graph_itself() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = gnm_graph(20, 60, 1.0..5.0, &mut rng);
        let sp = baswana_sen_spanner(&g, 1, &mut rng);
        assert_eq!(sp.m(), g.m());
    }

    #[test]
    fn stretch_bound_k2() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm_graph(60, 400, 1.0..10.0, &mut rng);
        check_spanner_stretch(&g, 2, 11);
    }

    #[test]
    fn stretch_bound_k3() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnm_graph(60, 500, 1.0..10.0, &mut rng);
        check_spanner_stretch(&g, 3, 12);
    }

    #[test]
    fn spanner_sparsifies_dense_graphs() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 120;
        let g = gnm_graph(n, n * (n - 1) / 4, 1.0..2.0, &mut rng);
        let sp = baswana_sen_spanner(&g, 3, &mut rng);
        // Expected size O(k n^{1+1/k}); allow a generous constant.
        let bound = 12.0 * (n as f64).powf(1.0 + 1.0 / 3.0);
        assert!(
            (sp.m() as f64) < bound,
            "spanner too dense: {} ≥ {bound}",
            sp.m()
        );
    }
}
