//! Plain-text graph I/O in the DIMACS shortest-path (`.gr`) dialect, so
//! experiments can run on external instances and results can be shared.
//!
//! Format:
//!
//! ```text
//! c comment lines
//! p sp <n> <m>
//! a <u> <v> <weight>     (1-based node ids; undirected edges once)
//! ```

use crate::graph::Graph;
use mte_algebra::NodeId;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};

/// Errors raised while parsing a `.gr` file.
#[derive(Debug, PartialEq, Eq)]
pub enum GraphParseError {
    /// The underlying reader failed; carries the I/O error's message.
    Io(String),
    /// Missing or malformed `p sp n m` line.
    MissingHeader,
    /// A second `p` line on the given line number.
    DuplicateHeader(usize),
    /// An arc line was malformed (wrong arity or unparsable numbers).
    BadArc(usize),
    /// A node id was outside `1..=n`.
    NodeOutOfRange(usize),
    /// The header declared `declared` edges but the document carried
    /// `parsed` arc lines.
    EdgeCountMismatch { declared: usize, parsed: usize },
    /// The arcs parsed but violate the graph invariants (loop,
    /// non-positive or non-finite weight).
    InvalidGraph(String),
}

impl std::fmt::Display for GraphParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphParseError::Io(msg) => write!(f, "I/O error: {msg}"),
            GraphParseError::MissingHeader => write!(f, "missing 'p sp <n> <m>' header"),
            GraphParseError::DuplicateHeader(line) => {
                write!(f, "duplicate 'p' header on line {line}")
            }
            GraphParseError::BadArc(line) => write!(f, "malformed arc on line {line}"),
            GraphParseError::NodeOutOfRange(line) => {
                write!(f, "node id out of range on line {line}")
            }
            GraphParseError::EdgeCountMismatch { declared, parsed } => {
                write!(
                    f,
                    "header declares {declared} edges but {parsed} were parsed"
                )
            }
            GraphParseError::InvalidGraph(msg) => write!(f, "invalid graph: {msg}"),
        }
    }
}

impl std::error::Error for GraphParseError {}

/// Parses a DIMACS-style `.gr` document.
///
/// Every failure maps to a typed [`GraphParseError`]: reader failures
/// to [`Io`](GraphParseError::Io), malformed lines to line-numbered
/// variants, a declared/parsed edge-count disagreement to
/// [`EdgeCountMismatch`](GraphParseError::EdgeCountMismatch), and
/// invariant violations (loops, bad weights) to
/// [`InvalidGraph`](GraphParseError::InvalidGraph) via
/// [`Graph::try_from_edges`]. No input makes this function panic.
pub fn read_gr(reader: impl Read) -> Result<Graph, GraphParseError> {
    if mte_faults::check_handled(
        mte_faults::FaultSite::GrParser,
        &[mte_faults::FaultKind::Io],
    )
    .is_some()
    {
        return Err(GraphParseError::Io("injected I/O failure".to_string()));
    }
    let buf = BufReader::new(reader);
    let mut header: Option<(usize, usize)> = None;
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for (idx, line) in buf.lines().enumerate() {
        let line = line.map_err(|e| GraphParseError::Io(e.to_string()))?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("c") | None => continue,
            Some("p") => {
                if header.is_some() {
                    return Err(GraphParseError::DuplicateHeader(idx + 1));
                }
                let _sp = parts.next();
                let nn = parts
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or(GraphParseError::MissingHeader)?;
                let mm = parts
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or(GraphParseError::MissingHeader)?;
                header = Some((nn, mm));
            }
            Some("a") => {
                let (n, _) = header.ok_or(GraphParseError::MissingHeader)?;
                let u = parts
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or(GraphParseError::BadArc(idx + 1))?;
                let v = parts
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or(GraphParseError::BadArc(idx + 1))?;
                let w = parts
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or(GraphParseError::BadArc(idx + 1))?;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(GraphParseError::NodeOutOfRange(idx + 1));
                }
                edges.push(((u - 1) as NodeId, (v - 1) as NodeId, w));
            }
            Some(_) => continue, // unknown directive: skip
        }
    }
    let (n, m) = header.ok_or(GraphParseError::MissingHeader)?;
    if edges.len() != m {
        return Err(GraphParseError::EdgeCountMismatch {
            declared: m,
            parsed: edges.len(),
        });
    }
    Graph::try_from_edges(n, edges).map_err(|e| GraphParseError::InvalidGraph(e.to_string()))
}

/// Serializes a graph in the `.gr` dialect.
pub fn write_gr(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "c generated by metric-tree-embedding");
    let _ = writeln!(out, "p sp {} {}", g.n(), g.m());
    for (u, v, w) in g.edges() {
        let _ = writeln!(out, "a {} {} {}", u + 1, v + 1, w);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = crate::generators::path_graph(5, 2.5);
        let text = write_gr(&g);
        let back = read_gr(text.as_bytes()).unwrap();
        assert_eq!(back.n(), g.n());
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = back.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn parses_comments_and_header() {
        let text = "c hello\np sp 3 2\na 1 2 1.5\na 2 3 2.5\n";
        let g = read_gr(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.weight(0, 1), Some(1.5));
        assert_eq!(g.weight(1, 2), Some(2.5));
    }

    #[test]
    fn missing_header_is_an_error() {
        assert_eq!(
            read_gr("a 1 2 1.0\n".as_bytes()).unwrap_err(),
            GraphParseError::MissingHeader
        );
    }

    #[test]
    fn out_of_range_node_is_an_error() {
        assert_eq!(
            read_gr("p sp 2 1\na 1 5 1.0\n".as_bytes()).unwrap_err(),
            GraphParseError::NodeOutOfRange(2)
        );
    }

    #[test]
    fn malformed_arc_is_an_error() {
        assert_eq!(
            read_gr("p sp 2 1\na 1 x 1.0\n".as_bytes()).unwrap_err(),
            GraphParseError::BadArc(2)
        );
    }
}
