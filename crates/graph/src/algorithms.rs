//! Sequential reference algorithms: Dijkstra, hop-limited
//! Moore-Bellman-Ford, BFS, shortest-path diameter.
//!
//! These are the ground truth the MBF-like framework is tested against,
//! and the building blocks of the hop-set and spanner substrates.

use crate::graph::Graph;
use mte_algebra::{Dist, NodeId};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Dist>,
    pred: Vec<NodeId>,
}

impl ShortestPaths {
    /// The source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `v`.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Dist {
        self.dist[v as usize]
    }

    /// All distances, indexed by node.
    #[inline]
    pub fn all(&self) -> &[Dist] {
        &self.dist
    }

    /// Reconstructs a shortest path from the source to `v`
    /// (node sequence source..=v), or `None` if unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.dist[v as usize].is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.pred[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Dijkstra's algorithm from `s`: exact distances `dist(s, ·, G)`.
pub fn sssp(g: &Graph, s: NodeId) -> ShortestPaths {
    let n = g.n();
    let mut dist = vec![Dist::INF; n];
    let mut pred = vec![s; n];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    dist[s as usize] = Dist::ZERO;
    heap.push(Reverse((Dist::ZERO, s)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &(w, ew) in g.neighbors(v) {
            let nd = d + Dist::new(ew);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                pred[w as usize] = v;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    ShortestPaths {
        source: s,
        dist,
        pred,
    }
}

/// Multi-source Dijkstra: for every node, the distance to the nearest
/// source and that source's id. Returns `(dist, nearest_source)`;
/// unreachable nodes carry `(∞, NodeId::MAX)`.
pub fn multi_source_dijkstra(g: &Graph, sources: &[NodeId]) -> (Vec<Dist>, Vec<NodeId>) {
    let n = g.n();
    let mut dist = vec![Dist::INF; n];
    let mut near = vec![NodeId::MAX; n];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    for &s in sources {
        dist[s as usize] = Dist::ZERO;
        near[s as usize] = s;
        heap.push(Reverse((Dist::ZERO, s)));
    }
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &(w, ew) in g.neighbors(v) {
            let nd = d + Dist::new(ew);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                near[w as usize] = near[v as usize];
                heap.push(Reverse((nd, w)));
            }
        }
    }
    (dist, near)
}

/// All-pairs shortest paths by one Dijkstra per source, parallelized over
/// sources. Returns the `n × n` distance matrix in row-major order
/// (`result[u][v] = dist(u, v, G)`).
pub fn apsp(g: &Graph) -> Vec<Vec<Dist>> {
    (0..g.n() as NodeId)
        .into_par_iter()
        .map(|s| sssp(g, s).dist)
        .collect()
}

/// Hop-limited Moore-Bellman-Ford: `dist^h(s, ·, G)` — the minimum weight
/// of an `≤ h`-hop path (Section 1.2). The classic MBF algorithm the
/// paper's framework generalizes; used as ground truth for `h`-hop claims.
pub fn sssp_hop_limited(g: &Graph, s: NodeId, h: usize) -> Vec<Dist> {
    let n = g.n();
    let mut cur = vec![Dist::INF; n];
    cur[s as usize] = Dist::ZERO;
    let mut next = cur.clone();
    for _ in 0..h {
        for v in 0..n {
            let mut best = cur[v];
            for &(w, ew) in g.neighbors(v as NodeId) {
                best = best.min(cur[w as usize] + Dist::new(ew));
            }
            next[v] = best;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// BFS hop counts from `s` (unweighted distances), `u32::MAX` if
/// unreachable.
pub fn bfs_hops(g: &Graph, s: NodeId) -> Vec<u32> {
    let n = g.n();
    let mut hops = vec![u32::MAX; n];
    hops[s as usize] = 0;
    let mut frontier = vec![s];
    let mut next = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        for &v in &frontier {
            for &(w, _) in g.neighbors(v) {
                if hops[w as usize] == u32::MAX {
                    hops[w as usize] = level;
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    hops
}

/// The unweighted hop diameter `D(G)` (Section 1.2); `u32::MAX` if `G` is
/// disconnected. Computed by one BFS per node, parallelized.
pub fn hop_diameter(g: &Graph) -> u32 {
    (0..g.n() as NodeId)
        .into_par_iter()
        .map(|s| bfs_hops(g, s).into_iter().max().unwrap_or(0))
        .max()
        .unwrap_or(0)
}

/// Lexicographic Dijkstra from `s`: for each node, the pair
/// `(dist(s, v), hop(s, v))` where `hop` is the minimum hop count among
/// shortest `s`-`v` paths (Section 1.2's `hop(v, w, G)`).
pub fn sssp_with_hops(g: &Graph, s: NodeId) -> (Vec<Dist>, Vec<u32>) {
    let n = g.n();
    let mut dist = vec![Dist::INF; n];
    let mut hops = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(Dist, u32, NodeId)>> = BinaryHeap::new();
    dist[s as usize] = Dist::ZERO;
    hops[s as usize] = 0;
    heap.push(Reverse((Dist::ZERO, 0, s)));
    while let Some(Reverse((d, h, v))) = heap.pop() {
        if (d, h) > (dist[v as usize], hops[v as usize]) {
            continue;
        }
        for &(w, ew) in g.neighbors(v) {
            let nd = d + Dist::new(ew);
            let nh = h + 1;
            if (nd, nh) < (dist[w as usize], hops[w as usize]) {
                dist[w as usize] = nd;
                hops[w as usize] = nh;
                heap.push(Reverse((nd, nh, w)));
            }
        }
    }
    (dist, hops)
}

/// The shortest-path diameter
/// `SPD(G) = max_{v,w} hop(v, w, G)` (Section 1.2): the number of
/// MBF-like iterations until a fixpoint. `u32::MAX` if disconnected.
pub fn shortest_path_diameter(g: &Graph) -> u32 {
    (0..g.n() as NodeId)
        .into_par_iter()
        .map(|s| sssp_with_hops(g, s).1.into_iter().max().unwrap_or(0))
        .max()
        .unwrap_or(0)
}

/// The paper's classic algebraic APSP baseline (Section 1.1): square the
/// min-plus adjacency matrix until the fixpoint,
/// `A^{(i+1)} = A^{(i)} A^{(i)}` — polylog depth but `Ω(n³)` work even on
/// sparse graphs. Returns the distance matrix and the number of
/// squarings (`≤ ⌈log₂ SPD(G)⌉ + 1`).
pub fn apsp_by_squaring(g: &Graph) -> (Vec<Vec<Dist>>, usize) {
    use mte_algebra::{MinPlus, Semiring, SemiringMatrix};
    let n = g.n();
    let mut a = SemiringMatrix::<MinPlus>::zeros(n);
    for i in 0..n {
        a.set(i, i, MinPlus::one());
    }
    for (u, v, w) in g.edges() {
        a.set(u as usize, v as usize, MinPlus::new(w));
        a.set(v as usize, u as usize, MinPlus::new(w));
    }
    let (fix, squarings) = a.square_to_fixpoint(n);
    let dist = (0..n)
        .map(|i| (0..n).map(|j| fix.get(i, j).dist()).collect())
        .collect();
    (dist, squarings)
}

/// Whether `G` is connected (true for `n ≤ 1`).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() == 0 {
        return true;
    }
    bfs_hops(g, 0).iter().all(|&h| h != u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -1- 1 -2- 2, plus a heavy direct edge 0-2 (weight 4): the
    /// shortest 0→2 route goes through 1.
    fn triangle() -> Graph {
        Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
    }

    #[test]
    fn dijkstra_prefers_two_hop_route() {
        let sp = sssp(&triangle(), 0);
        assert_eq!(sp.dist(2), Dist::new(3.0));
        assert_eq!(sp.path_to(2), Some(vec![0, 1, 2]));
    }

    #[test]
    fn hop_limited_mbf_respects_hop_budget() {
        let g = triangle();
        let d1 = sssp_hop_limited(&g, 0, 1);
        assert_eq!(d1[2], Dist::new(4.0)); // only the direct edge in 1 hop
        let d2 = sssp_hop_limited(&g, 0, 2);
        assert_eq!(d2[2], Dist::new(3.0));
        let d0 = sssp_hop_limited(&g, 0, 0);
        assert_eq!(d0[2], Dist::INF);
        assert_eq!(d0[0], Dist::ZERO);
    }

    #[test]
    fn hop_limited_matches_dijkstra_at_n_hops() {
        let g = crate::generators::gnm_graph(40, 100, 1.0..10.0, &mut rand_rng(3));
        let exact = sssp(&g, 0);
        let mbf = sssp_hop_limited(&g, 0, g.n());
        for v in 0..g.n() {
            assert_eq!(mbf[v], exact.dist(v as NodeId));
        }
    }

    fn rand_rng(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bfs_and_hop_diameter() {
        let g = crate::generators::path_graph(5, 1.0);
        assert_eq!(bfs_hops(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(hop_diameter(&g), 4);
    }

    #[test]
    fn spd_of_path_is_n_minus_1() {
        let g = crate::generators::path_graph(6, 1.0);
        assert_eq!(shortest_path_diameter(&g), 5);
    }

    #[test]
    fn spd_counts_min_hop_shortest_paths() {
        // 0-2 direct (weight 3) ties the 0-1-2 route (1+2): SPD must use
        // the min-hop one, so hop(0,2) = 1.
        let g = Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]);
        let (dist, hops) = sssp_with_hops(&g, 0);
        assert_eq!(dist[2], Dist::new(3.0));
        assert_eq!(hops[2], 1);
        assert_eq!(shortest_path_diameter(&g), 1);
    }

    #[test]
    fn multi_source_assigns_nearest() {
        let g = crate::generators::path_graph(7, 1.0);
        let (dist, near) = multi_source_dijkstra(&g, &[0, 6]);
        assert_eq!(dist[3], Dist::new(3.0));
        assert_eq!(near[1], 0);
        assert_eq!(near[5], 6);
    }

    #[test]
    fn apsp_is_symmetric() {
        let g = triangle();
        let d = apsp(&g);
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(d[u][v], d[v][u]);
            }
        }
        assert_eq!(d[0][2], Dist::new(3.0));
    }

    #[test]
    fn squaring_apsp_matches_dijkstra() {
        let g = crate::generators::gnm_graph(30, 80, 1.0..9.0, &mut rand_rng(9));
        let (sq, squarings) = apsp_by_squaring(&g);
        let reference = apsp(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                let (a, b) = (sq[u][v].value(), reference[u][v].value());
                assert!(
                    (a - b).abs() <= 1e-9 * a.max(b).max(1.0),
                    "({u},{v}): {a} vs {b}"
                );
            }
        }
        // ⌈log₂ SPD⌉ + 1 squarings suffice.
        let spd = shortest_path_diameter(&g) as f64;
        assert!(squarings <= spd.log2().ceil() as usize + 2);
    }

    #[test]
    fn connectivity() {
        let g = Graph::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(!is_connected(&g));
        assert!(is_connected(&crate::generators::path_graph(4, 1.0)));
    }
}
