//! Reproducible graph generators for tests, examples and experiments.
//!
//! All random generators take an explicit RNG; all weights are drawn from a
//! caller-supplied range, keeping the paper's assumption of a polynomially
//! bounded weight ratio under the caller's control. Every generator returns
//! a *connected* graph (the paper assumes connectivity, Section 1.2).

use crate::graph::Graph;
use mte_algebra::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::ops::Range;

fn rand_weight(range: &Range<f64>, rng: &mut impl Rng) -> f64 {
    if range.start == range.end {
        range.start
    } else {
        rng.gen_range(range.clone())
    }
}

/// A uniformly random spanning tree skeleton: node `i ≥ 1` attaches to a
/// uniformly random earlier node. (A random recursive tree — cheap,
/// connected, and with logarithmic expected depth.)
fn random_attachment_edges(n: usize, rng: &mut impl Rng) -> Vec<(NodeId, NodeId)> {
    (1..n)
        .map(|i| (rng.gen_range(0..i) as NodeId, i as NodeId))
        .collect()
}

/// Connected Erdős–Rényi-style `G(n, m)`: a random recursive tree plus
/// `m − (n−1)` additional uniformly random edges (duplicates merged, so
/// the realized edge count can be slightly below `m` on dense requests).
pub fn gnm_graph(n: usize, m: usize, weights: Range<f64>, rng: &mut impl Rng) -> Graph {
    assert!(n >= 1);
    assert!(m + 1 >= n, "need m ≥ n − 1 for connectivity");
    let mut edges: Vec<(NodeId, NodeId, f64)> = random_attachment_edges(n, rng)
        .into_iter()
        .map(|(u, v)| (u, v, rand_weight(&weights, rng)))
        .collect();
    let extra = m.saturating_sub(n.saturating_sub(1));
    for _ in 0..extra {
        if n < 2 {
            break;
        }
        let u = rng.gen_range(0..n) as NodeId;
        let mut v = rng.gen_range(0..n) as NodeId;
        while v == u {
            v = rng.gen_range(0..n) as NodeId;
        }
        edges.push((u, v, rand_weight(&weights, rng)));
    }
    Graph::try_from_edges(n, edges).expect("generator produced an invalid edge list")
}

/// Path `0 − 1 − … − (n−1)` with uniform weight: SPD(G) = n − 1, the
/// paper's worst case for plain MBF iteration counts.
pub fn path_graph(n: usize, weight: f64) -> Graph {
    Graph::try_from_edges(
        n,
        (0..n.saturating_sub(1)).map(|i| (i as NodeId, (i + 1) as NodeId, weight)),
    )
    .expect("generator produced an invalid edge list")
}

/// Cycle on `n ≥ 3` nodes with uniform weight: the paper's example of a
/// graph where every *deterministic* tree embedding stretches some edge by
/// `Ω(n)` (Section 1.1, Metric Tree Embeddings).
pub fn cycle_graph(n: usize, weight: f64) -> Graph {
    assert!(n >= 3);
    Graph::try_from_edges(
        n,
        (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId, weight)),
    )
    .expect("generator produced an invalid edge list")
}

/// `rows × cols` grid with unit-range random weights.
pub fn grid_graph(rows: usize, cols: usize, weights: Range<f64>, rng: &mut impl Rng) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), rand_weight(&weights, rng)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), rand_weight(&weights, rng)));
            }
        }
    }
    Graph::try_from_edges(rows * cols, edges).expect("generator produced an invalid edge list")
}

/// Star: node 0 is the hub. SPD(G) = 2 — the easy case for MBF.
pub fn star_graph(n: usize, weights: Range<f64>, rng: &mut impl Rng) -> Graph {
    assert!(n >= 2);
    Graph::try_from_edges(
        n,
        (1..n).map(|i| (0, i as NodeId, rand_weight(&weights, rng))),
    )
    .expect("generator produced an invalid edge list")
}

/// Uniformly random recursive tree with random weights.
pub fn tree_graph(n: usize, weights: Range<f64>, rng: &mut impl Rng) -> Graph {
    let edges: Vec<_> = random_attachment_edges(n, rng)
        .into_iter()
        .map(|(u, v)| (u, v, rand_weight(&weights, rng)))
        .collect();
    Graph::try_from_edges(n, edges).expect("generator produced an invalid edge list")
}

/// Caterpillar: a spine path of `spine` nodes (weight `spine_weight`) with
/// `legs` leaf nodes hanging off random spine nodes. Large SPD with extra
/// volume — the adversarial family for iteration-count experiments.
pub fn caterpillar_graph(
    spine: usize,
    legs: usize,
    spine_weight: f64,
    leg_weights: Range<f64>,
    rng: &mut impl Rng,
) -> Graph {
    assert!(spine >= 2);
    let mut edges: Vec<(NodeId, NodeId, f64)> = (0..spine - 1)
        .map(|i| (i as NodeId, (i + 1) as NodeId, spine_weight))
        .collect();
    for l in 0..legs {
        let attach = rng.gen_range(0..spine) as NodeId;
        edges.push((
            attach,
            (spine + l) as NodeId,
            rand_weight(&leg_weights, rng),
        ));
    }
    Graph::try_from_edges(spine + legs, edges).expect("generator produced an invalid edge list")
}

/// "Highway" graph: a unit-weight spine path of `spine` nodes plus heavy
/// hub edges (weight `hub_weight ≫ spine`) from node 0 to every node.
/// Hop diameter `D(G) = 2`, but every shortest path still follows the
/// spine, so `SPD(G) = spine − 1`. This is the regime where the
/// skeleton-based Congest algorithm (Theorem 8.1) beats Khan et al.:
/// `√n + D(G) ≪ SPD(G)`.
pub fn highway_graph(spine: usize, hub_weight: f64) -> Graph {
    assert!(spine >= 3);
    assert!(
        hub_weight > spine as f64,
        "hub edges must never shortcut the spine"
    );
    let mut edges: Vec<(NodeId, NodeId, f64)> = (0..spine - 1)
        .map(|i| (i as NodeId, (i + 1) as NodeId, 1.0))
        .collect();
    for v in 2..spine {
        edges.push((0, v as NodeId, hub_weight));
    }
    Graph::try_from_edges(spine, edges).expect("generator produced an invalid edge list")
}

/// Random geometric graph: `n` points in the unit square, edges between
/// points at Euclidean distance `≤ radius` (weight = distance, scaled by
/// `weight_scale`), made connected by chaining consecutive points of a
/// random ordering where necessary. A road-network-like family.
pub fn random_geometric_graph(
    n: usize,
    radius: f64,
    weight_scale: f64,
    rng: &mut impl Rng,
) -> Graph {
    assert!(n >= 1 && radius > 0.0 && weight_scale > 0.0);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let dist = |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let d = dist(points[i], points[j]);
            if d <= radius && d > 0.0 {
                edges.push((i as NodeId, j as NodeId, d * weight_scale));
            }
        }
    }
    // Connectivity patch: connect each node to its nearest point among the
    // earlier ones (like a Euclidean minimum insertion tree).
    for i in 1..n {
        let (j, d) = (0..i)
            .map(|j| (j, dist(points[i], points[j])))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        edges.push((j as NodeId, i as NodeId, d.max(1e-9) * weight_scale));
    }
    Graph::try_from_edges(n, edges).expect("generator produced an invalid edge list")
}

/// Expander-like random regular multigraph: the union of `deg/2` random
/// permutation cycles (duplicates merged). Expanders witness the
/// optimality of the O(log n) stretch bound (Section 1.1).
pub fn expander_graph(n: usize, deg: usize, weights: Range<f64>, rng: &mut impl Rng) -> Graph {
    assert!(n >= 3 && deg >= 2);
    let mut edges = Vec::with_capacity(n * deg / 2);
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    for _ in 0..deg.div_ceil(2) {
        perm.shuffle(rng);
        for i in 0..n {
            let u = perm[i];
            let v = perm[(i + 1) % n];
            if u != v {
                edges.push((u, v, rand_weight(&weights, rng)));
            }
        }
    }
    // A cycle through all nodes is part of the union, so it is connected.
    Graph::try_from_edges(n, edges).expect("generator produced an invalid edge list")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn gnm_is_connected_with_requested_size() {
        let g = gnm_graph(50, 120, 1.0..10.0, &mut rng(1));
        assert_eq!(g.n(), 50);
        assert!(g.m() >= 49 && g.m() <= 120);
        assert!(is_connected(&g));
    }

    #[test]
    fn generators_produce_connected_graphs() {
        let mut r = rng(2);
        assert!(is_connected(&path_graph(10, 1.0)));
        assert!(is_connected(&cycle_graph(10, 1.0)));
        assert!(is_connected(&grid_graph(4, 6, 1.0..2.0, &mut r)));
        assert!(is_connected(&star_graph(9, 1.0..2.0, &mut r)));
        assert!(is_connected(&tree_graph(20, 1.0..2.0, &mut r)));
        assert!(is_connected(&caterpillar_graph(
            8,
            12,
            1.0,
            1.0..2.0,
            &mut r
        )));
        assert!(is_connected(&random_geometric_graph(
            40, 0.2, 100.0, &mut r
        )));
        assert!(is_connected(&expander_graph(30, 4, 1.0..2.0, &mut r)));
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = gnm_graph(30, 60, 1.0..5.0, &mut rng(42));
        let g2 = gnm_graph(30, 60, 1.0..5.0, &mut rng(42));
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn grid_dimensions() {
        let g = grid_graph(3, 4, 1.0..1.0000001, &mut rng(3));
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
    }

    #[test]
    fn highway_graph_has_small_diameter_large_spd() {
        let g = highway_graph(50, 1e5);
        assert!(is_connected(&g));
        assert_eq!(crate::algorithms::hop_diameter(&g), 2);
        assert_eq!(crate::algorithms::shortest_path_diameter(&g), 49);
    }

    #[test]
    fn uniform_weight_range_is_allowed() {
        let g = gnm_graph(10, 20, 1.0..1.0, &mut rng(4));
        assert!(g.edges().all(|(_, _, w)| w == 1.0));
    }
}
