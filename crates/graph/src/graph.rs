//! Weighted undirected graphs in compressed sparse row (CSR) layout.

use mte_algebra::NodeId;

/// An edge list: `(u, v, weight)` triples with `u ≠ v` and `weight > 0`.
pub type EdgeList = Vec<(NodeId, NodeId, f64)>;

/// An edge list violated the graph invariants (checked construction,
/// [`Graph::try_from_edges`]). Reports the first offending edge in
/// input order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphBuildError {
    /// Edge `index` is a loop on `node`.
    Loop { index: usize, node: NodeId },
    /// Edge `index` references `node`, outside `0..n`.
    EndpointOutOfRange {
        index: usize,
        node: NodeId,
        n: usize,
    },
    /// Edge `index` carries a weight that is not positive and finite
    /// (zero, negative, NaN or `∞`).
    BadWeight { index: usize, weight: f64 },
}

impl std::fmt::Display for GraphBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphBuildError::Loop { index, node } => {
                write!(f, "edge {index} is a loop on node {node}")
            }
            GraphBuildError::EndpointOutOfRange { index, node, n } => {
                write!(f, "edge {index} endpoint {node} out of range for n = {n}")
            }
            GraphBuildError::BadWeight { index, weight } => {
                write!(f, "edge {index} weight {weight} is not positive and finite")
            }
        }
    }
}

impl std::error::Error for GraphBuildError {}

/// A weighted undirected graph `G = (V, E, ω)` (paper Section 1.2):
/// no loops, no parallel edges, `ω : E → R_{>0}`.
///
/// Stored as CSR adjacency (every undirected edge appears in both endpoint
/// rows), which makes the MBF-like propagate/aggregate step a cache-friendly
/// scan.
#[derive(Clone, Debug)]
pub struct Graph {
    offsets: Vec<usize>,
    adjacency: Vec<(NodeId, f64)>,
    m: usize,
}

impl Graph {
    /// Builds a graph on `n` nodes from an edge list.
    ///
    /// Loops are rejected; parallel edges are merged keeping the minimum
    /// weight (the only weight relevant to any distance-like semiring);
    /// weights must be positive and finite. Invariants are checked by
    /// debug assertions only — callers handling untrusted input use
    /// [`Graph::try_from_edges`].
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>) -> Graph {
        let normalized: EdgeList = edges.into_iter().collect();
        if cfg!(debug_assertions) {
            for &(u, v, w) in &normalized {
                assert!(u != v, "loops are not allowed (node {u})");
                assert!(
                    w > 0.0 && w.is_finite(),
                    "edge weights must be positive and finite, got {w}"
                );
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "edge endpoint out of range"
                );
            }
        }
        Graph::build_unchecked(n, normalized)
    }

    /// Checked [`Graph::from_edges`]: validates every edge (in input
    /// order) and reports the first violation as a typed error instead
    /// of panicking. This is the boundary for untrusted input — the
    /// `.gr` parser and the generators route through it.
    pub fn try_from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> Result<Graph, GraphBuildError> {
        let normalized: EdgeList = edges.into_iter().collect();
        for (index, &(u, v, w)) in normalized.iter().enumerate() {
            if u == v {
                return Err(GraphBuildError::Loop { index, node: u });
            }
            let weight_ok = w > 0.0 && w.is_finite();
            if !weight_ok {
                return Err(GraphBuildError::BadWeight { index, weight: w });
            }
            let node = if (u as usize) >= n {
                Some(u)
            } else if (v as usize) >= n {
                Some(v)
            } else {
                None
            };
            if let Some(node) = node {
                return Err(GraphBuildError::EndpointOutOfRange { index, node, n });
            }
        }
        Ok(Graph::build_unchecked(n, normalized))
    }

    /// CSR construction on a validated edge list.
    fn build_unchecked(n: usize, mut normalized: EdgeList) -> Graph {
        for e in &mut normalized {
            if e.0 > e.1 {
                std::mem::swap(&mut e.0, &mut e.1);
            }
        }
        normalized.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        normalized.dedup_by(|next, prev| prev.0 == next.0 && prev.1 == next.1);

        let m = normalized.len();
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &normalized {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adjacency = vec![(0 as NodeId, 0.0f64); 2 * m];
        for &(u, v, w) in &normalized {
            adjacency[cursor[u as usize]] = (v, w);
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize]] = (u, w);
            cursor[v as usize] += 1;
        }
        // Sort each row by neighbor id for deterministic iteration and
        // binary-searchable `weight` lookups.
        for v in 0..n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable_by_key(|a| a.0);
        }
        Graph {
            offsets,
            adjacency,
            m,
        }
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Neighbors of `v` with edge weights, sorted by neighbor id.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self.adjacency[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Weight of edge `{u, v}` if present.
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let row = self.neighbors(u);
        row.binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|i| row[i].1)
    }

    /// Iterates over each undirected edge once (`u < v`).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&(v, _)| u < v)
                .map(move |&(v, w)| (u, v, w))
        })
    }

    /// Minimum edge weight `ω_min` (`∞` for edgeless graphs).
    pub fn min_weight(&self) -> f64 {
        self.adjacency
            .iter()
            .map(|&(_, w)| w)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum edge weight `ω_max` (`0` for edgeless graphs).
    pub fn max_weight(&self) -> f64 {
        self.adjacency.iter().map(|&(_, w)| w).fold(0.0, f64::max)
    }

    /// A new graph with the given extra edges added (parallel edges merged
    /// by minimum weight). Used to augment `G` with hop-set or spanner
    /// shortcut edges.
    pub fn augment(&self, extra: impl IntoIterator<Item = (NodeId, NodeId, f64)>) -> Graph {
        let mut edges: EdgeList = self.edges().collect();
        edges.extend(extra);
        Graph::from_edges(self.n(), edges)
    }

    /// A new graph with every weight multiplied by `factor > 0`.
    pub fn scale_weights(&self, factor: f64) -> Graph {
        assert!(factor > 0.0 && factor.is_finite());
        Graph::from_edges(self.n(), self.edges().map(|(u, v, w)| (u, v, w * factor)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, vec![(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
    }

    #[test]
    fn csr_construction_counts() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let g = Graph::from_edges(2, vec![(0, 1, 5.0), (1, 0, 2.0), (0, 1, 7.0)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.weight(0, 1), Some(2.0));
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn weight_lookup() {
        let g = triangle();
        assert_eq!(g.weight(2, 0), Some(4.0));
        assert_eq!(g.weight(0, 0), None);
    }

    #[test]
    fn augment_merges_and_adds() {
        let g = triangle().augment(vec![(0, 2, 1.0)]);
        assert_eq!(g.weight(0, 2), Some(1.0));
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn min_max_weight() {
        let g = triangle();
        assert_eq!(g.min_weight(), 1.0);
        assert_eq!(g.max_weight(), 4.0);
    }

    #[test]
    #[should_panic]
    fn loops_rejected() {
        let _ = Graph::from_edges(2, vec![(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn nonpositive_weight_rejected() {
        let _ = Graph::from_edges(2, vec![(0, 1, 0.0)]);
    }

    #[test]
    fn try_from_edges_accepts_valid_input() {
        let g = Graph::try_from_edges(3, vec![(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn try_from_edges_reports_first_violation() {
        assert_eq!(
            Graph::try_from_edges(2, vec![(0, 1, 1.0), (1, 1, 1.0)]).unwrap_err(),
            GraphBuildError::Loop { index: 1, node: 1 }
        );
        assert!(matches!(
            Graph::try_from_edges(2, vec![(0, 1, f64::NAN)]),
            Err(GraphBuildError::BadWeight { index: 0, weight }) if weight.is_nan()
        ));
        assert_eq!(
            Graph::try_from_edges(2, vec![(0, 1, -3.0)]).unwrap_err(),
            GraphBuildError::BadWeight {
                index: 0,
                weight: -3.0
            }
        );
        assert_eq!(
            Graph::try_from_edges(2, vec![(0, 2, 1.0)]).unwrap_err(),
            GraphBuildError::EndpointOutOfRange {
                index: 0,
                node: 2,
                n: 2
            }
        );
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::from_edges(1, Vec::new());
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
        assert!(g.neighbors(0).is_empty());
    }
}
