//! Graph substrate for the metric-tree-embedding workspace.
//!
//! Provides the weighted undirected graphs the paper's algorithms run on
//! (Section 1.2: no loops, no parallel edges, positive weights,
//! polynomially bounded weight ratio), together with
//!
//! * [`generators`] — reproducible random and structured graph families,
//! * [`algorithms`] — sequential reference algorithms (Dijkstra SSSP/APSP,
//!   hop-limited Moore-Bellman-Ford, BFS, shortest-path diameter),
//!   used as ground truth by the test suite,
//! * [`spanner`] — the Baswana–Sen `(2k−1)`-spanner (used by
//!   Theorem 6.2 and Corollary 7.11),
//! * [`hopset`] — `(d, ε̂)`-hop sets (the substitute for Cohen's
//!   construction; see DESIGN.md §3).

pub mod algorithms;
pub mod generators;
pub mod graph;
pub mod hopset;
pub mod io;
pub mod spanner;

pub use graph::{EdgeList, Graph, GraphBuildError};
pub use hopset::{Hopset, HopsetConfig};
pub use spanner::baswana_sen_spanner;
