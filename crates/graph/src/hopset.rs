//! `(d, ε̂)`-hop sets: extra edges `E'` such that the `d`-hop distances of
//! the augmented graph `(1+ε̂)`-approximate the true distances
//! (Equation (1.3) of the paper).
//!
//! The paper plugs in Cohen's polylog-depth construction \[13\]; its *only*
//! property consumed downstream is Equation (1.3). We substitute a
//! **sampled-hub hop set** in the spirit of Ullman–Yannakakis /
//! Klein–Subramanian (documented in DESIGN.md §3): sample each vertex as a
//! hub with probability `Θ(log n / d)`; connect every pair of hubs by a
//! shortcut edge of weight `dist(h, h', G)` (optionally inflated by
//! `(1+ε̂)` to exercise the approximate code paths downstream).
//!
//! **Why this is a `(d, ε̂)`-hop set (w.h.p.):** fix for each node pair a
//! canonical min-hop shortest path. If it has `≤ d` hops nothing is
//! needed. Otherwise both its prefix of `⌊(d−1)/2⌋` vertices and suffix of
//! `⌊(d−1)/2⌋` vertices contain a hub w.h.p.; replacing the stretch
//! between the first and last such hub by one shortcut edge yields a path
//! with `≤ 2⌊(d−1)/2⌋ + 1 ≤ d` hops and weight at most
//! `(1+ε̂)·dist(v,w,G)` (the shortcut weight is at most `(1+ε̂)` times the
//! weight of the subpath it replaces).

use crate::algorithms::sssp;
use crate::graph::Graph;
use mte_algebra::NodeId;
use rand::Rng;
use rayon::prelude::*;

/// Configuration for the hop-set construction.
#[derive(Clone, Debug)]
pub struct HopsetConfig {
    /// The hop budget `d ≥ 3`. Smaller `d` means more hubs and more
    /// shortcut edges.
    pub d: usize,
    /// Weight inflation `ε̂ ≥ 0` applied to shortcut edges. `0` yields an
    /// exact `(d, 0)`-hop set; positive values exercise the
    /// approximation-tolerant downstream pipeline (Observation 1.1).
    pub epsilon: f64,
    /// Oversampling factor for the hub probability `c·ln n / ⌊(d−1)/2⌋`.
    pub oversample: f64,
}

impl Default for HopsetConfig {
    fn default() -> Self {
        HopsetConfig {
            d: 17,
            epsilon: 0.0,
            oversample: 2.0,
        }
    }
}

impl HopsetConfig {
    /// A hop budget balancing the two work terms of the oracle pipeline:
    /// `d·m` (iterating `G'`) against `d·|hubs|²` with
    /// `|hubs| ≈ 2·c·n·ln n/d`, minimized at `d* ≈ 2c·n·ln n/√m`.
    /// The asymptotic `Õ(m^{1+ε})` regime corresponds to `d = n^ε`; this
    /// constructor picks the sweet spot for concrete instance sizes.
    pub fn for_scale(n: usize, m: usize) -> HopsetConfig {
        let c = 2.0;
        let d_star =
            2.0 * c * (n.max(2) as f64) * (n.max(2) as f64).ln() / (m.max(1) as f64).sqrt();
        let d = (d_star as usize).clamp(9, n.max(9));
        HopsetConfig {
            d,
            epsilon: 0.0,
            oversample: c,
        }
    }
}

/// A computed hop set: the shortcut edges plus the parameters they realize.
#[derive(Clone, Debug)]
pub struct Hopset {
    /// Shortcut edges to add to `G`.
    pub edges: Vec<(NodeId, NodeId, f64)>,
    /// The hop budget the construction targets.
    pub d: usize,
    /// The approximation parameter `ε̂`.
    pub epsilon: f64,
    /// The sampled hubs.
    pub hubs: Vec<NodeId>,
}

impl Hopset {
    /// Builds the hop set for `g`.
    pub fn build(g: &Graph, config: &HopsetConfig, rng: &mut impl Rng) -> Hopset {
        assert!(config.d >= 3, "hop budget must be at least 3");
        assert!(config.epsilon >= 0.0);
        let n = g.n();
        let segment = ((config.d - 1) / 2).max(1);
        let p = (config.oversample * (n.max(2) as f64).ln() / segment as f64).min(1.0);

        let hubs: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.gen_bool(p)).collect();

        // Shortcut clique over the hubs, emitted inside the per-hub
        // parallel map: each task runs one SSSP and keeps only the
        // `O(|hubs|)` shortcut edges it produces, so the transient
        // footprint is one distance vector per in-flight task instead
        // of the former Θ(|hubs|·n) all-hub distance table. Hub order
        // is preserved by the parallel collect, so the edge list is
        // deterministic.
        let inflate = 1.0 + config.epsilon;
        let hubs_ref: &[NodeId] = &hubs;
        let per_hub: Vec<Vec<(NodeId, NodeId, f64)>> = hubs
            .par_iter()
            .enumerate()
            .map(|(i, &h)| {
                let dists = sssp(g, h);
                hubs_ref[i + 1..]
                    .iter()
                    .filter_map(|&h2| {
                        let d = dists.dist(h2);
                        (d.is_finite() && d.value() > 0.0).then(|| (h, h2, d.value() * inflate))
                    })
                    .collect()
            })
            .collect();
        // Exact-size concatenation — no hubs²/2 over-reservation.
        let total: usize = per_hub.iter().map(Vec::len).sum();
        let mut edges = Vec::with_capacity(total);
        for chunk in per_hub {
            edges.extend(chunk);
        }
        Hopset {
            edges,
            d: config.d,
            epsilon: config.epsilon,
            hubs,
        }
    }

    /// Number of shortcut edges `|E'|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` iff no shortcuts were added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// `G' = G + E'`: the augmented graph on which `d`-hop distances
    /// `(1+ε̂)`-approximate `dist(·,·,G)`.
    pub fn augment(&self, g: &Graph) -> Graph {
        g.augment(self.edges.iter().copied())
    }
}

/// The trivial hop set for graphs whose SPD is already small: adds no
/// edges and sets `d = SPD(G)` supplied by the caller. Useful for tests
/// and for dense inputs that are "metric-like" already.
pub fn trivial_hopset(d: usize) -> Hopset {
    Hopset {
        edges: Vec::new(),
        d,
        epsilon: 0.0,
        hubs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{sssp, sssp_hop_limited};
    use crate::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Checks Equation (1.3) on all pairs.
    fn check_hopset_property(g: &Graph, hs: &Hopset) {
        let aug = hs.augment(g);
        let bound = 1.0 + hs.epsilon + 1e-9;
        for s in 0..g.n() as NodeId {
            let exact = sssp(g, s);
            let hop = sssp_hop_limited(&aug, s, hs.d);
            for v in 0..g.n() {
                let e = exact.dist(v as NodeId).value();
                let h = hop[v].value();
                assert!(h >= e - 1e-9, "hop set may not shorten distances");
                assert!(
                    h <= e * bound + 1e-9,
                    "hop-set property violated at ({s},{v}): {h} > {bound}·{e}"
                );
            }
        }
    }

    #[test]
    fn path_graph_hopset_exact() {
        // SPD = n−1 without shortcuts; the hop set must compress it.
        let g = path_graph(64, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let hs = Hopset::build(
            &g,
            &HopsetConfig {
                d: 9,
                epsilon: 0.0,
                oversample: 3.0,
            },
            &mut rng,
        );
        check_hopset_property(&g, &hs);
    }

    #[test]
    fn random_graph_hopset_exact() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = gnm_graph(80, 160, 1.0..20.0, &mut rng);
        let hs = Hopset::build(
            &g,
            &HopsetConfig {
                d: 7,
                epsilon: 0.0,
                oversample: 3.0,
            },
            &mut rng,
        );
        check_hopset_property(&g, &hs);
    }

    #[test]
    fn inflated_hopset_respects_epsilon() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = gnm_graph(60, 150, 1.0..10.0, &mut rng);
        let hs = Hopset::build(
            &g,
            &HopsetConfig {
                d: 7,
                epsilon: 0.25,
                oversample: 3.0,
            },
            &mut rng,
        );
        check_hopset_property(&g, &hs);
    }

    #[test]
    fn trivial_hopset_adds_nothing() {
        let hs = trivial_hopset(5);
        assert!(hs.is_empty());
        let g = path_graph(4, 1.0);
        assert_eq!(hs.augment(&g).m(), g.m());
    }
}
