//! The distributed LE-list algorithm of Khan et al. \[26\] (Section 8.1 of
//! the paper), simulated at the message level.
//!
//! Every node starts with `x_v = {(v, 0)}`. Whenever a node's LE list
//! gains an entry, the entry is scheduled for broadcast; each round, each
//! node sends one pending `(source, distance)` pair over all incident
//! edges. Receivers relax by the edge weight and merge under LE
//! domination. The protocol terminates when no message is in flight —
//! after `O(SPD(G) log n)` rounds w.h.p. (each of the `≤ SPD(G)`
//! "waves" carries `O(log n)` list entries by Lemma 7.6).

use crate::cost::CongestCost;
use mte_algebra::{Dist, NodeId};
use mte_core::frt::le_list::{le_filter_in_place, LeList, Ranks};
use mte_core::frt::tree::FrtTree;
use mte_graph::Graph;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Per-node protocol state.
struct NodeState {
    /// Current LE list entries, sorted ascending by distance
    /// (strictly decreasing rank).
    list: Vec<(NodeId, Dist)>,
    /// Entries awaiting broadcast.
    queue: VecDeque<(NodeId, Dist)>,
}

/// Message-level simulation of LE-list computation on `g` with all edge
/// weights multiplied by `stretch`, starting from the given per-node
/// initial lists; entries travel at most `max_hops` edges (`None` =
/// unlimited). Returns the final lists and the exact cost.
///
/// This generalized entry point also drives the skeleton algorithm's
/// jump-started phase (Section 8.2/8.3, Equations (8.9)/(8.20)).
pub fn pipelined_le_lists(
    g: &Graph,
    ranks: &Ranks,
    init: Vec<Vec<(NodeId, Dist)>>,
    stretch: f64,
    max_hops: Option<usize>,
) -> (Vec<LeList>, CongestCost) {
    let n = g.n();
    assert_eq!(init.len(), n);
    let mut nodes: Vec<NodeState> = init
        .into_iter()
        .map(|mut entries| {
            // The init vector is owned: filter it in its own buffer
            // instead of copying through `le_filter_entries`.
            le_filter_in_place(&mut entries, ranks);
            let queue = entries.iter().copied().collect();
            NodeState {
                list: entries,
                queue,
            }
        })
        .collect();
    // hops[v] tracks, per queued entry, how many edges it travelled; the
    // queue stores (source, dist, hops) triples, so fold it in:
    let mut queues: Vec<VecDeque<(NodeId, Dist, u32)>> = nodes
        .iter_mut()
        .map(|s| s.queue.drain(..).map(|(w, d)| (w, d, 0u32)).collect())
        .collect();

    let mut cost = CongestCost::new();
    let hop_limit = max_hops.map(|h| h as u32).unwrap_or(u32::MAX);

    loop {
        // Pick this round's message per node: the first queued entry that
        // is still present in the node's current list (superseded entries
        // are dropped without being sent).
        let mut outgoing: Vec<Option<(NodeId, Dist, u32)>> = Vec::with_capacity(n);
        for v in 0..n {
            let msg = loop {
                match queues[v].pop_front() {
                    None => break None,
                    Some((w, d, h)) => {
                        let current = nodes[v]
                            .list
                            .iter()
                            .find(|&&(x, _)| x == w)
                            .map(|&(_, d2)| d2);
                        if current == Some(d) && h < hop_limit {
                            break Some((w, d, h));
                        }
                    }
                }
            };
            outgoing.push(msg);
        }
        if outgoing.iter().all(Option::is_none) {
            break;
        }
        cost.rounds += 1;

        // Deliver: each sender transmits its pair over every incident edge.
        let mut inbox: Vec<Vec<(NodeId, Dist, u32)>> = vec![Vec::new(); n];
        for v in 0..n as NodeId {
            if let Some((w, d, h)) = outgoing[v as usize] {
                for &(u, ew) in g.neighbors(v) {
                    cost.messages += 1;
                    inbox[u as usize].push((w, d + Dist::new(ew * stretch), h + 1));
                }
            }
        }

        // Merge under LE domination; newly surviving entries are queued.
        for v in 0..n {
            if inbox[v].is_empty() {
                continue;
            }
            let mut merged = nodes[v].list.clone();
            merged.extend(inbox[v].iter().map(|&(w, d, _)| (w, d)));
            le_filter_in_place(&mut merged, ranks);
            if merged != nodes[v].list {
                for &(w, d) in &merged {
                    let had = nodes[v].list.iter().any(|&(x, dx)| x == w && dx <= d);
                    if !had {
                        // Queue with the hop count of the message that
                        // produced this entry.
                        let h = inbox[v]
                            .iter()
                            .filter(|&&(x, dx, _)| x == w && dx == d)
                            .map(|&(_, _, h)| h)
                            .min()
                            .unwrap_or(0);
                        queues[v].push_back((w, d, h));
                    }
                }
                nodes[v].list = merged;
            }
        }
    }

    let lists = nodes
        .into_iter()
        .map(|s| LeList::from_entries_sorted(s.list))
        .collect();
    (lists, cost)
}

/// The algorithm of Khan et al. \[26\]: LE lists of the exact metric of `G`
/// computed distributedly. Returns lists and the measured Congest cost.
pub fn khan_le_lists(g: &Graph, ranks: &Ranks) -> (Vec<LeList>, CongestCost) {
    let init: Vec<Vec<(NodeId, Dist)>> = (0..g.n() as NodeId)
        .map(|v| vec![(v, Dist::ZERO)])
        .collect();
    pipelined_le_lists(g, ranks, init, 1.0, None)
}

/// End-to-end distributed FRT sampling à la Khan et al.: LE lists by
/// [`khan_le_lists`], then the tree via Lemma 7.2 (the tree construction
/// is local postprocessing: every node knows its own list; `β` and the
/// permutation seed are broadcast in `O(D(G))` extra rounds, accounted).
pub fn khan_frt(g: &Graph, rng: &mut impl Rng) -> (FrtTree, Arc<Ranks>, CongestCost) {
    let ranks = Arc::new(Ranks::sample(g.n(), rng));
    let beta = rng.gen_range(1.0..2.0);
    let (lists, mut cost) = khan_le_lists(g, &ranks);
    let diameter = mte_graph::algorithms::hop_diameter(g) as u64;
    cost += CongestCost::broadcast(2, diameter, g.n() as u64); // β + seed
    let tree = FrtTree::from_le_lists(&lists, &ranks, beta, g.min_weight());
    (tree, ranks, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_core::frt::le_list::{le_lists_approx_eq, le_lists_direct};
    use mte_graph::algorithms::shortest_path_diameter;
    use mte_graph::generators::{gnm_graph, path_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn khan_matches_centralized_le_lists() {
        let mut rng = StdRng::seed_from_u64(91);
        let g = gnm_graph(40, 100, 1.0..8.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (distributed, cost) = khan_le_lists(&g, &ranks);
        let (centralized, _, _) = le_lists_direct(&g, &ranks);
        assert!(le_lists_approx_eq(&distributed, &centralized, 1e-9));
        assert!(cost.rounds > 0 && cost.messages > 0);
    }

    #[test]
    fn rounds_scale_with_spd() {
        // O(SPD log n) upper bound; on a path SPD = n − 1.
        let g = path_graph(64, 1.0);
        let mut rng = StdRng::seed_from_u64(92);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (_, cost) = khan_le_lists(&g, &ranks);
        let spd = shortest_path_diameter(&g) as u64;
        let logn = (g.n() as f64).log2().ceil() as u64;
        assert!(
            cost.rounds >= spd / 2,
            "rounds {} suspiciously low",
            cost.rounds
        );
        assert!(
            cost.rounds <= 4 * spd * logn,
            "rounds {} above O(SPD log n)",
            cost.rounds
        );
    }

    #[test]
    fn hop_limit_truncates_propagation() {
        let g = path_graph(10, 1.0);
        let ranks = Ranks::from_order((0..10).collect());
        let init: Vec<Vec<(NodeId, Dist)>> =
            (0..10).map(|v| vec![(v as NodeId, Dist::ZERO)]).collect();
        let (lists, _) = pipelined_le_lists(&g, &ranks, init, 1.0, Some(3));
        // Node 9's list may only contain sources within 3 hops.
        for &(w, d) in lists[9].entries() {
            assert!(d <= Dist::new(3.0), "entry ({w},{d:?}) travelled too far");
        }
    }

    #[test]
    fn khan_frt_tree_dominates() {
        let mut rng = StdRng::seed_from_u64(93);
        let g = gnm_graph(30, 70, 1.0..6.0, &mut rng);
        let (tree, _, _) = khan_frt(&g, &mut rng);
        let exact = mte_graph::algorithms::apsp(&g);
        for u in 0..g.n() as NodeId {
            for v in 0..g.n() as NodeId {
                assert!(tree.leaf_distance(u, v) >= exact[u as usize][v as usize].value() - 1e-9);
            }
        }
    }
}
