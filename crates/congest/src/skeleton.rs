//! Skeleton-based distributed FRT construction (Sections 8.2/8.3 of the
//! paper, after Ghaffari & Lenzen \[22\]).
//!
//! When `SPD(G) ≫ √n`, running Khan et al. directly is slow. Instead:
//!
//! 1. sample a skeleton `S` of `Θ(√n log n)` nodes; w.h.p. every node has
//!    a skeleton node within `ℓ = ⌈√n⌉` hops, and skeleton pairwise
//!    distances are realized by paths with `≤ ℓ` hops between consecutive
//!    skeleton nodes,
//! 2. learn `ℓ`-hop-limited distances to nearby skeleton nodes
//!    (message-level simulated, `(S, ℓ, ∞, |S|)`-source detection),
//! 3. build the skeleton graph `G_S` (Equations (8.2)–(8.4)), sparsify it
//!    with a Baswana–Sen `(2k−1)`-spanner, and broadcast the spanner
//!    globally (pipelined over a BFS tree, `O(|E'_S| + D(G))` rounds),
//! 4. locally compute skeleton LE lists (rank-ordering all of `S` before
//!    `V∖S`, as Section 8.2 requires) and **jump-start** `ℓ` more
//!    pipelined LE rounds on `G` with edge weights stretched by `2k−1`
//!    (Equation (8.9)).
//!
//! The result embeds `G` with expected stretch `O(k log n)` while the
//! round count scales with `√n + D(G)` instead of `SPD(G)`.

use crate::cost::CongestCost;
use crate::khan::pipelined_le_lists;
use mte_algebra::{Dist, NodeId};
use mte_core::frt::le_list::{le_lists_from_metric, LeList, Ranks};
use mte_core::frt::tree::FrtTree;
use mte_graph::algorithms::hop_diameter;
use mte_graph::spanner::baswana_sen_spanner;
use mte_graph::Graph;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Parameters of the skeleton algorithm.
#[derive(Clone, Debug)]
pub struct SkeletonConfig {
    /// Hop budget `ℓ` (`None` = `⌈√n⌉`).
    pub ell: Option<usize>,
    /// Skeleton sampling oversampling constant `c` (probability
    /// `min(1, c·ln n/ℓ)` per node).
    pub oversample: f64,
    /// Spanner parameter `k` (stretch `2k−1` on skeleton distances).
    pub spanner_k: usize,
}

impl Default for SkeletonConfig {
    fn default() -> Self {
        SkeletonConfig {
            ell: None,
            oversample: 2.0,
            spanner_k: 2,
        }
    }
}

/// Result of the skeleton-based construction.
#[derive(Clone, Debug)]
pub struct SkeletonResult {
    /// The sampled FRT tree (of the skeleton-stretched metric `H`).
    pub tree: FrtTree,
    /// The random order (skeleton nodes rank first).
    pub ranks: Arc<Ranks>,
    /// The final LE lists.
    pub le_lists: Vec<LeList>,
    /// The skeleton nodes.
    pub skeleton: Vec<NodeId>,
    /// Total simulated Congest cost.
    pub cost: CongestCost,
}

/// Message-level simulation of `(sources, ℓ, ∞, |S|)`-source detection:
/// every node learns `dist^ℓ(v, s, G)` for every source it can see within
/// `ℓ` hops. Returns per-node `(source, dist)` lists and the cost.
fn pipelined_source_detection(
    g: &Graph,
    sources: &[NodeId],
    ell: usize,
) -> (Vec<Vec<(NodeId, Dist)>>, CongestCost) {
    let n = g.n();
    // Ordered per-node source tables: `into_iter` below feeds the output
    // lists, so iteration order must not depend on hash state (the final
    // sort makes the *lists* canonical, but float-free determinism is
    // cheapest to guarantee at the container level).
    let mut dist: Vec<std::collections::BTreeMap<NodeId, (Dist, u32)>> =
        vec![std::collections::BTreeMap::new(); n];
    let mut queues: Vec<VecDeque<(NodeId, Dist, u32)>> = vec![VecDeque::new(); n];
    for &s in sources {
        dist[s as usize].insert(s, (Dist::ZERO, 0));
        queues[s as usize].push_back((s, Dist::ZERO, 0));
    }
    let mut cost = CongestCost::new();
    loop {
        let mut outgoing: Vec<Option<(NodeId, Dist, u32)>> = Vec::with_capacity(n);
        for v in 0..n {
            let msg = loop {
                match queues[v].pop_front() {
                    None => break None,
                    Some((s, d, h)) => {
                        let current = dist[v].get(&s).copied();
                        if current.map(|(cd, _)| cd) == Some(d) && (h as usize) < ell {
                            break Some((s, d, h));
                        }
                    }
                }
            };
            outgoing.push(msg);
        }
        if outgoing.iter().all(Option::is_none) {
            break;
        }
        cost.rounds += 1;
        let mut inbox: Vec<Vec<(NodeId, Dist, u32)>> = vec![Vec::new(); n];
        for v in 0..n as NodeId {
            if let Some((s, d, h)) = outgoing[v as usize] {
                for &(u, ew) in g.neighbors(v) {
                    cost.messages += 1;
                    inbox[u as usize].push((s, d + Dist::new(ew), h + 1));
                }
            }
        }
        for v in 0..n {
            for &(s, d, h) in &inbox[v] {
                let better = match dist[v].get(&s) {
                    None => true,
                    Some(&(cd, ch)) => d < cd || (d == cd && h < ch),
                };
                if better {
                    dist[v].insert(s, (d, h));
                    queues[v].push_back((s, d, h));
                }
            }
        }
    }
    let lists = dist
        .into_iter()
        .map(|m| {
            let mut v: Vec<(NodeId, Dist)> = m.into_iter().map(|(s, (d, _))| (s, d)).collect();
            v.sort_unstable_by_key(|&(s, d)| (d, s));
            v
        })
        .collect();
    (lists, cost)
}

/// Runs the full skeleton-based distributed FRT construction.
pub fn skeleton_frt(g: &Graph, config: &SkeletonConfig, rng: &mut impl Rng) -> SkeletonResult {
    let n = g.n();
    let ell = config
        .ell
        .unwrap_or_else(|| (n as f64).sqrt().ceil() as usize)
        .max(1);
    let diameter = hop_diameter(g) as u64;
    let mut cost = CongestCost::new();

    // (1) Sample the skeleton; O(D(G)) rounds to agree on randomness.
    let p = (config.oversample * (n.max(2) as f64).ln() / ell as f64).min(1.0);
    let mut skeleton: Vec<NodeId> = (0..n as NodeId).filter(|_| rng.gen_bool(p)).collect();
    if skeleton.is_empty() {
        skeleton.push(rng.gen_range(0..n) as NodeId);
    }
    cost += CongestCost::broadcast(2, diameter, n as u64);

    // Rank all skeleton nodes before all non-skeleton nodes (Section 8.2).
    let mut order: Vec<NodeId> = skeleton.clone();
    {
        use rand::seq::SliceRandom;
        order.shuffle(rng);
        let mut rest: Vec<NodeId> = (0..n as NodeId).filter(|v| !skeleton.contains(v)).collect();
        rest.shuffle(rng);
        order.extend(rest);
    }
    let ranks = Arc::new(Ranks::from_order(order));

    // (2) ℓ-hop source detection from the skeleton.
    let (source_lists, sd_cost) = pipelined_source_detection(g, &skeleton, ell);
    cost += sd_cost;

    // (3) Skeleton graph from the ℓ-hop distances known at skeleton
    // nodes; sparsified and broadcast.
    let mut skel_index = vec![usize::MAX; n];
    for (i, &s) in skeleton.iter().enumerate() {
        skel_index[s as usize] = i;
    }
    let mut skel_edges = Vec::new();
    for &s in &skeleton {
        for &(t, d) in &source_lists[s as usize] {
            if t != s && skel_index[t as usize] != usize::MAX && s < t {
                skel_edges.push((
                    skel_index[s as usize] as NodeId,
                    skel_index[t as usize] as NodeId,
                    d.value(),
                ));
            }
        }
    }
    let skel_graph = Graph::from_edges(skeleton.len(), skel_edges);
    let spanner = baswana_sen_spanner(&skel_graph, config.spanner_k, rng);
    cost += CongestCost::broadcast(spanner.m() as u64, diameter, n as u64);

    // (4) Locally: skeleton LE lists from the spanner metric. The
    // skeleton-internal ranks must mirror the global order's prefix.
    let skel_dist = mte_graph::algorithms::apsp(&spanner);
    let mut skel_order: Vec<NodeId> = (0..skeleton.len() as NodeId).collect();
    skel_order.sort_unstable_by_key(|&i| ranks.rank(skeleton[i as usize]));
    let skel_ranks = Ranks::from_order(skel_order);
    let (skel_le, _) = le_lists_from_metric(&skel_dist, &skel_ranks);

    // …then jump-start: skeleton nodes start from their skeleton LE lists
    // (translated back to global ids), everyone else from {(v, 0)}.
    let stretch = (2 * config.spanner_k - 1) as f64;
    let init: Vec<Vec<(NodeId, Dist)>> = (0..n as NodeId)
        .map(|v| {
            if skel_index[v as usize] != usize::MAX {
                let mut entries: Vec<(NodeId, Dist)> = skel_le[skel_index[v as usize]]
                    .entries()
                    .iter()
                    .map(|&(si, d)| (skeleton[si as usize], d))
                    .collect();
                entries.push((v, Dist::ZERO));
                entries
            } else {
                vec![(v, Dist::ZERO)]
            }
        })
        .collect();
    let (mut le_lists, le_cost) = pipelined_le_lists(g, &ranks, init, stretch, Some(ell));
    cost += le_cost;

    // Recovery phase: w.h.p. every node already holds the global
    // minimum-rank node (a skeleton node whose entries traverse every
    // ℓ-hop neighbourhood). In the unlucky event of a skeleton gap wider
    // than ℓ hops, some node misses it and the tree construction would
    // fail; re-running the pipelined propagation without a hop limit
    // from the current lists repairs this, at its exact extra round
    // cost. (The w.h.p. analysis makes this a no-op in the common case.)
    let min_rank_node = ranks.min_rank_node();
    if le_lists
        .iter()
        .any(|l| l.entries().last().map(|&(w, _)| w) != Some(min_rank_node))
    {
        let resume: Vec<Vec<(NodeId, Dist)>> =
            le_lists.iter().map(|l| l.entries().to_vec()).collect();
        let (repaired, repair_cost) = pipelined_le_lists(g, &ranks, resume, stretch, None);
        le_lists = repaired;
        cost += repair_cost;
    }

    let beta = rng.gen_range(1.0..2.0);
    let tree = FrtTree::from_le_lists(&le_lists, &ranks, beta, g.min_weight());
    SkeletonResult {
        tree,
        ranks,
        le_lists,
        skeleton,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mte_graph::algorithms::apsp;
    use mte_graph::generators::gnm_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skeleton_tree_dominates_graph_distances() {
        let mut rng = StdRng::seed_from_u64(101);
        let g = gnm_graph(60, 140, 1.0..6.0, &mut rng);
        let res = skeleton_frt(&g, &SkeletonConfig::default(), &mut rng);
        let exact = apsp(&g);
        for u in 0..g.n() as NodeId {
            for v in 0..g.n() as NodeId {
                let dt = res.tree.leaf_distance(u, v);
                let dg = exact[u as usize][v as usize].value();
                assert!(dt >= dg - 1e-9, "dominance violated ({u},{v}): {dt} < {dg}");
            }
        }
    }

    #[test]
    fn skeleton_ranks_come_first() {
        let mut rng = StdRng::seed_from_u64(102);
        let g = gnm_graph(50, 110, 1.0..5.0, &mut rng);
        let res = skeleton_frt(&g, &SkeletonConfig::default(), &mut rng);
        let max_skel_rank = res
            .skeleton
            .iter()
            .map(|&s| res.ranks.rank(s))
            .max()
            .unwrap();
        assert!((max_skel_rank as usize) < res.skeleton.len());
    }

    #[test]
    fn skeleton_beats_khan_on_large_spd_graphs() {
        // Theorem 8.1's regime: D(G) ≪ √n ≪ SPD(G). The highway graph
        // has D = 2 and SPD = n − 1, so Khan et al. pay Θ(SPD) rounds
        // while the skeleton algorithm pays Õ(√n + D).
        let mut rng = StdRng::seed_from_u64(103);
        let g = mte_graph::generators::highway_graph(2500, 1e5);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (_, khan_cost) = crate::khan::khan_le_lists(&g, &ranks);
        let config = SkeletonConfig {
            ell: Some(250),
            oversample: 1.0,
            spanner_k: 3,
        };
        let res = skeleton_frt(&g, &config, &mut rng);
        assert!(
            res.cost.rounds < khan_cost.rounds,
            "skeleton {} rounds vs khan {}",
            res.cost.rounds,
            khan_cost.rounds
        );
        // And the output is still a valid dominating embedding.
        let sp0 = mte_graph::algorithms::sssp(&g, 0);
        for v in 0..g.n() as NodeId {
            assert!(res.tree.leaf_distance(0, v) >= sp0.dist(v).value() - 1e-9);
        }
    }

    #[test]
    fn average_stretch_stays_moderate() {
        let mut rng = StdRng::seed_from_u64(104);
        let g = gnm_graph(40, 90, 1.0..8.0, &mut rng);
        let exact = apsp(&g);
        let trials = 5;
        let mut total = 0.0;
        let mut count = 0;
        for t in 0..trials {
            let mut trng = StdRng::seed_from_u64(200 + t);
            let res = skeleton_frt(&g, &SkeletonConfig::default(), &mut trng);
            for u in 0..g.n() as NodeId {
                for v in (u + 1)..g.n() as NodeId {
                    total += res.tree.leaf_distance(u, v) / exact[u as usize][v as usize].value();
                    count += 1;
                }
            }
        }
        let avg = total / count as f64;
        // O(k log n) with k = 2: generous bound.
        assert!(avg < 12.0 * (g.n() as f64).log2(), "avg stretch {avg}");
    }
}
