//! Distributed FRT construction in the Congest model (Section 8 of the
//! paper).
//!
//! The Congest model (Peleg \[38\]): synchronous rounds; per round each node
//! may send one `O(log n)`-bit message over each incident edge — here, one
//! `(node id, distance)` pair. This crate *simulates* the model at the
//! message level (DESIGN.md §3, substitution 4) and reports exact round
//! and message counts for
//!
//! * [`khan`] — the LE-list algorithm of Khan et al. \[26\]
//!   (Section 8.1), running in `O(SPD(G) log n)` rounds w.h.p.,
//! * [`skeleton`] — the skeleton-based algorithm in the spirit of
//!   Ghaffari & Lenzen \[22\] / Section 8.3, which jump-starts the LE-list
//!   computation from a √n-size skeleton and beats the Khan et al. bound
//!   when `SPD(G) ≫ √n`.

pub mod cost;
pub mod khan;
pub mod skeleton;

pub use cost::CongestCost;
pub use khan::{khan_le_lists, pipelined_le_lists};
pub use skeleton::{skeleton_frt, SkeletonConfig, SkeletonResult};
