//! Round and message accounting for simulated Congest executions.

use std::ops::AddAssign;

/// Cost of a (simulated) Congest-model execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CongestCost {
    /// Synchronous rounds.
    pub rounds: u64,
    /// Messages sent (each one `(node id, distance)` pair, i.e.
    /// `O(log n)` bits).
    pub messages: u64,
}

impl CongestCost {
    /// Zero cost.
    pub fn new() -> Self {
        CongestCost::default()
    }

    /// Cost of broadcasting `items` values to all nodes over a BFS tree
    /// of depth `diameter`: pipelining delivers one value per round after
    /// the `diameter`-round fill, and every tree edge forwards every item.
    pub fn broadcast(items: u64, diameter: u64, n: u64) -> Self {
        CongestCost {
            rounds: items + diameter,
            messages: items * n.saturating_sub(1),
        }
    }

    /// The sharded engine's exchange traffic read as a Congest cost:
    /// each barriered hop is one synchronous round, and every
    /// cross-shard [`ExchangeMsg`](mte_core::shard::ExchangeMsg) is one
    /// message (the `shard_msgs` counter in
    /// [`WorkStats`](mte_core::WorkStats)). This is the bridge that
    /// makes exchange volume — rather than wall clock — the trackable
    /// scaling metric in `BENCH_parallel.json` shard rows.
    pub fn from_exchange(work: &mte_core::WorkStats) -> Self {
        CongestCost {
            rounds: work.iterations,
            messages: work.shard_msgs,
        }
    }
}

impl AddAssign for CongestCost {
    fn add_assign(&mut self, rhs: CongestCost) {
        self.rounds += rhs.rounds;
        self.messages += rhs.messages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_cost_is_pipelined() {
        let c = CongestCost::broadcast(10, 3, 5);
        assert_eq!(c.rounds, 13);
        assert_eq!(c.messages, 40);
    }

    #[test]
    fn exchange_bridge_reads_shard_counters() {
        let work = mte_core::WorkStats {
            iterations: 4,
            shard_msgs: 24,
            shard_msg_bytes: 1024,
            ..mte_core::WorkStats::default()
        };
        let c = CongestCost::from_exchange(&work);
        assert_eq!(c.rounds, 4);
        assert_eq!(c.messages, 24);
    }

    #[test]
    fn accumulation() {
        let mut a = CongestCost {
            rounds: 2,
            messages: 7,
        };
        a += CongestCost {
            rounds: 1,
            messages: 3,
        };
        assert_eq!(
            a,
            CongestCost {
                rounds: 3,
                messages: 10
            }
        );
    }
}
