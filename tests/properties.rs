//! Property-based tests for the paper's algebraic laws: semiring axioms
//! (Definition A.2), zero-preserving semimodule axioms (Definition A.3 /
//! Equations (2.1)–(2.5)), and congruence/representative-projection laws
//! (Definitions 2.4/2.6, Lemma 2.8) for every filter in the workspace.

use metric_tree_embedding::algebra::allpaths::{AllPaths, Path};
use metric_tree_embedding::algebra::laws::{check_congruence, check_semimodule, check_semiring};
use metric_tree_embedding::algebra::node_set::NodeSet;
use metric_tree_embedding::algebra::{Bool, Dist, DistanceMap, MinPlus, NodeId, Width, WidthMap};
use metric_tree_embedding::core::catalog::forest_fire::ThresholdFilter;
use metric_tree_embedding::core::catalog::ksdp::KsdpFilter;
use metric_tree_embedding::core::catalog::source_detection::{
    SourceDetection, SourceDetectionFilter,
};
use metric_tree_embedding::core::catalog::KShortestDistances;
use metric_tree_embedding::core::frt::le_list::{LeFilter, Ranks};
use proptest::prelude::*;
use std::sync::Arc;

const UNIVERSE: NodeId = 12;

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        8 => (0u32..1000).prop_map(|v| Dist::new(v as f64 / 8.0)),
        1 => Just(Dist::INF),
        1 => Just(Dist::ZERO),
    ]
}

fn arb_minplus() -> impl Strategy<Value = MinPlus> {
    arb_dist().prop_map(MinPlus)
}

fn arb_width() -> impl Strategy<Value = Width> {
    arb_dist().prop_map(Width)
}

fn arb_distance_map() -> impl Strategy<Value = DistanceMap> {
    proptest::collection::vec((0..UNIVERSE, arb_dist()), 0..8).prop_map(DistanceMap::from_entries)
}

fn arb_width_map() -> impl Strategy<Value = WidthMap> {
    proptest::collection::vec((0..UNIVERSE, arb_width()), 0..8).prop_map(WidthMap::from_entries)
}

fn arb_node_set() -> impl Strategy<Value = NodeSet> {
    proptest::collection::vec(0..UNIVERSE, 0..8).prop_map(NodeSet::from_nodes)
}

/// A random loop-free path over a small universe (so concatenations
/// actually fire sometimes).
fn arb_path() -> impl Strategy<Value = Path> {
    (proptest::collection::vec(0..5u32, 1..4), any::<bool>()).prop_map(|(mut nodes, rev)| {
        nodes.sort_unstable();
        nodes.dedup();
        if rev {
            // Descending paths end at the smallest node — hits the k-SDP
            // target 0 often enough to exercise the keep-path branches.
            nodes.reverse();
        }
        Path::from_nodes(&nodes).expect("sorted deduped nodes form a loop-free path")
    })
}

fn arb_allpaths() -> impl Strategy<Value = AllPaths> {
    (
        proptest::collection::vec((arb_path(), 0u32..100), 0..5),
        any::<bool>(),
    )
        .prop_map(|(entries, identity)| {
            AllPaths::normalize(
                identity,
                entries
                    .into_iter()
                    .map(|(p, w)| (p, Dist::new(w as f64)))
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- Semiring laws (Definition A.2) ----

    #[test]
    fn minplus_semiring_laws(x in arb_minplus(), y in arb_minplus(), z in arb_minplus()) {
        check_semiring(&x, &y, &z).unwrap();
    }

    #[test]
    fn maxmin_semiring_laws(x in arb_width(), y in arb_width(), z in arb_width()) {
        check_semiring(&x, &y, &z).unwrap();
    }

    #[test]
    fn allpaths_semiring_laws(x in arb_allpaths(), y in arb_allpaths(), z in arb_allpaths()) {
        check_semiring(&x, &y, &z).unwrap();
    }

    // ---- Semimodule laws (Definition A.3, Equations (2.1)–(2.5)) ----

    #[test]
    fn distance_map_semimodule_laws(
        s in arb_minplus(), t in arb_minplus(),
        x in arb_distance_map(), y in arb_distance_map(),
    ) {
        check_semimodule(&s, &t, &x, &y).unwrap();
    }

    #[test]
    fn width_map_semimodule_laws(
        s in arb_width(), t in arb_width(),
        x in arb_width_map(), y in arb_width_map(),
    ) {
        check_semimodule(&s, &t, &x, &y).unwrap();
    }

    #[test]
    fn node_set_semimodule_laws(
        s in any::<bool>(), t in any::<bool>(),
        x in arb_node_set(), y in arb_node_set(),
    ) {
        check_semimodule(&Bool(s), &Bool(t), &x, &y).unwrap();
    }

    #[test]
    fn allpaths_selfmodule_laws(
        s in arb_allpaths(), t in arb_allpaths(),
        x in arb_allpaths(), y in arb_allpaths(),
    ) {
        check_semimodule(&s, &t, &x, &y).unwrap();
    }

    // ---- Congruence laws (Lemma 2.8) for every filter ----

    #[test]
    fn source_detection_filter_is_congruent(
        s in arb_minplus(),
        x in arb_distance_map(), y in arb_distance_map(),
        k in 1usize..4,
        limit in arb_dist(),
    ) {
        let sources: Vec<NodeId> = (0..UNIVERSE).filter(|v| v % 2 == 0).collect();
        let filter = SourceDetectionFilter(SourceDetection::new(
            UNIVERSE as usize, &sources, k, limit,
        ));
        check_congruence(&filter, &s, &x, &y).unwrap();
    }

    #[test]
    fn threshold_filter_is_congruent(
        s in arb_minplus(), x in arb_minplus(), y in arb_minplus(), limit in arb_dist(),
    ) {
        check_congruence(&ThresholdFilter(limit), &s, &x, &y).unwrap();
    }

    #[test]
    fn le_filter_is_congruent(
        s in arb_minplus(),
        x in arb_distance_map(), y in arb_distance_map(),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ranks = Arc::new(Ranks::sample(UNIVERSE as usize, &mut rng));
        check_congruence(&LeFilter::new(ranks), &s, &x, &y).unwrap();
    }

    #[test]
    fn ksdp_filter_is_congruent(
        s in arb_allpaths(), x in arb_allpaths(), y in arb_allpaths(), k in 1usize..3,
    ) {
        // Target node 0 exists in the path universe {0..5}.
        let filter = KsdpFilter(KShortestDistances::new(0, k));
        check_congruence(&filter, &s, &x, &y).unwrap();
    }

    #[test]
    fn ksdp_distinct_filter_is_congruent(
        s in arb_allpaths(), x in arb_allpaths(), y in arb_allpaths(),
    ) {
        let filter = KsdpFilter(KShortestDistances::distinct(0, 2));
        check_congruence(&filter, &s, &x, &y).unwrap();
    }
}
