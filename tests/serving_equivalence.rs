//! Differential tests for the serving layer (PR 9 satellite): oracle
//! answers must be **bit-identical** to direct recomputation from the
//! embedding — point queries and batched dense-block sweeps against
//! [`FrtTree::leaf_distance`], the intersection rung against a direct
//! LE-list recompute — across thread counts {1, 4} and a save/load
//! roundtrip through the snapshot container. Degraded (non-exact)
//! answers must still be sound upper bounds on the graph metric, with
//! every ladder fall recorded.

use metric_tree_embedding::core::frt::{le_lists_direct, FrtTree, LeList, Ranks};
use metric_tree_embedding::prelude::*;
use metric_tree_embedding::serving::{
    CancelToken, Oracle, OracleArtifact, Rung, ServeConfig, ServeDegradation,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Runs `f` on a dedicated pool of the given total parallelism.
fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build cannot fail")
        .install(f)
}

/// The same workload catalog the schedule-equivalence suite pins.
fn workload_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(0x53E1);
    vec![
        ("gnm sparse", gnm_graph(70, 180, 1.0..10.0, &mut rng)),
        ("grid 9x9", grid_graph(9, 9, 1.0..5.0, &mut rng)),
        ("path", path_graph(56, 1.0)),
    ]
}

fn artifact_for(g: &Graph, seed: u64) -> OracleArtifact {
    let ranks = Arc::new(Ranks::sample(g.n(), &mut StdRng::seed_from_u64(seed)));
    let (lists, _, _) = le_lists_direct(g, &ranks);
    let tree = FrtTree::from_le_lists(&lists, &ranks, 1.3, g.min_weight());
    OracleArtifact::from_parts(lists, Ranks::clone(&ranks), tree).expect("parts are valid")
}

/// Direct LE-list intersection recompute: `min_w (d_u(w) + d_v(w))`
/// over nodes common to both lists, the reference for rung 3.
fn direct_intersection(lu: &LeList, lv: &LeList) -> f64 {
    let mut best = f64::INFINITY;
    for &(w, du) in lu.entries() {
        for &(x, dv) in lv.entries() {
            if w == x && du.value() + dv.value() < best {
                best = du.value() + dv.value();
            }
        }
    }
    best
}

#[test]
fn point_queries_match_leaf_distance_bit_for_bit() {
    for (name, g) in workload_graphs() {
        let artifact = artifact_for(&g, 0x53E2);
        let oracle = Oracle::new(artifact);
        let n = g.n() as u32;
        for u in 0..n {
            for v in 0..n {
                let answer = oracle
                    .distance(u, v)
                    .unwrap_or_else(|e| panic!("{name}: ({u},{v}) failed: {e}"));
                assert!(answer.exact, "{name}: default budget must serve exact");
                assert!(matches!(answer.rung, Rung::TreeLca | Rung::CacheHit));
                let reference = oracle.artifact().tree().leaf_distance(u, v);
                assert!(
                    answer.value == reference,
                    "{name}: ({u},{v}) served {} want {reference}",
                    answer.value
                );
            }
        }
        // The symmetric sweep revisits every pair: the cache must have
        // served some of it, and hits are exact too (checked above).
        assert!(oracle.cache_stats().hits > 0, "{name}: cache never hit");
    }
}

#[test]
fn batched_sweeps_match_leaf_distance_bit_for_bit() {
    for (name, g) in workload_graphs() {
        let artifact = artifact_for(&g, 0x53E3);
        let oracle = Oracle::new(artifact);
        let n = g.n() as u32;
        let sources: Vec<u32> = (0..n).step_by(7).collect();
        let batch = oracle
            .batch_distances(&sources, &CancelToken::new())
            .unwrap_or_else(|e| panic!("{name}: batch failed: {e}"));
        assert_eq!(batch.distances.len(), sources.len());
        for (i, &s) in sources.iter().enumerate() {
            for v in 0..n {
                let reference = oracle.artifact().tree().leaf_distance(s, v);
                assert!(
                    batch.distances[i][v as usize] == reference,
                    "{name}: batch ({s},{v}) = {} want {reference}",
                    batch.distances[i][v as usize]
                );
            }
        }
        assert!(batch.work > 0, "{name}: work units not accounted");
    }
}

#[test]
fn intersection_rung_matches_direct_recompute() {
    let mut rungs_exercised = 0usize;
    for (name, g) in workload_graphs() {
        let artifact = artifact_for(&g, 0x53E4);
        let climb_bound = (artifact.tree().num_levels() - 1) as u64;
        let n = g.n() as u32;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let lu = &artifact.le_lists()[u as usize];
                let lv = &artifact.le_lists()[v as usize];
                let cost = (lu.len() + lv.len()) as u64;
                // A budget that affords the probe + the intersection but
                // not a worst-case climb pins the ladder on rung 3.
                if cost >= climb_bound {
                    continue;
                }
                let config = ServeConfig {
                    query_budget: 1 + cost,
                    ..ServeConfig::default()
                };
                // Fresh oracle per pair: an empty cache keeps the probe
                // a miss and the ladder path deterministic.
                let oracle = Oracle::with_config(artifact.clone(), config);
                let answer = oracle
                    .distance(u, v)
                    .unwrap_or_else(|e| panic!("{name}: ({u},{v}) failed: {e}"));
                assert_eq!(answer.rung, Rung::ListIntersection, "{name}: ({u},{v})");
                assert!(!answer.exact);
                assert!(
                    answer
                        .degradations
                        .contains(&ServeDegradation::TreeLcaSkipped),
                    "{name}: ({u},{v}) skip not recorded: {:?}",
                    answer.degradations
                );
                let reference = direct_intersection(lu, lv);
                assert!(
                    answer.value == reference,
                    "{name}: ({u},{v}) served {} want {reference}",
                    answer.value
                );
                rungs_exercised += 1;
            }
        }
    }
    assert!(
        rungs_exercised > 0,
        "no pair in the catalog could pin the intersection rung"
    );
}

#[test]
fn degraded_answers_are_upper_bounds_on_the_graph_metric() {
    for (name, g) in workload_graphs() {
        let artifact = artifact_for(&g, 0x53E5);
        // Three work units: a cache probe plus the degraded rung's
        // two-unit floor — nothing else is affordable.
        let config = ServeConfig {
            query_budget: 3,
            ..ServeConfig::default()
        };
        let oracle = Oracle::with_config(artifact, config);
        let all_pairs = apsp(&g);
        let n = g.n() as u32;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let answer = oracle
                    .distance(u, v)
                    .unwrap_or_else(|e| panic!("{name}: ({u},{v}) failed under floor budget: {e}"));
                assert!(!answer.exact, "{name}: 3 units cannot buy an exact answer");
                assert!(
                    answer.value.is_finite(),
                    "{name}: degraded bound not finite"
                );
                // The bound is exact arithmetic ≥ d_G, but the two
                // sides accumulate their sums in different association
                // orders — allow rounding-level slack, nothing more.
                let d_g = all_pairs[u as usize][v as usize].value();
                assert!(
                    answer.value >= d_g - 1e-9 * d_g.max(1.0),
                    "{name}: ({u},{v}) bound {} below graph distance {d_g}",
                    answer.value
                );
                assert!(
                    !answer.degradations.is_empty(),
                    "{name}: ladder falls unrecorded"
                );
            }
        }
    }
}

/// One full query sweep (point + batch), returning every served value
/// in a deterministic order for cross-thread comparison.
fn sweep_values(oracle: &Oracle, n: u32) -> Vec<f64> {
    let mut out = Vec::new();
    for u in 0..n {
        for v in 0..n {
            let answer = oracle
                .distance(u, v)
                .unwrap_or_else(|e| panic!("({u},{v}) failed: {e}"));
            out.push(answer.value);
        }
    }
    let sources: Vec<u32> = (0..n).step_by(5).collect();
    let batch = oracle
        .batch_distances(&sources, &CancelToken::new())
        .unwrap_or_else(|e| panic!("batch failed: {e}"));
    for row in batch.distances {
        out.extend(row);
    }
    out
}

#[test]
fn answers_are_bit_identical_across_thread_counts_and_a_roundtrip() {
    for (name, g) in workload_graphs() {
        let artifact = artifact_for(&g, 0x53E6);
        let image = artifact.encode();
        let n = g.n() as u32;
        let mut sweeps = Vec::new();
        for threads in [1usize, 4] {
            // Serve from a freshly decoded copy each time: the roundtrip
            // through the snapshot container is part of the contract.
            let image = &image;
            let values = with_threads(threads, move || {
                let artifact = OracleArtifact::decode(image).expect("own encoding must decode");
                let oracle = Oracle::new(artifact);
                sweep_values(&oracle, n)
            });
            sweeps.push(values);
        }
        assert_eq!(sweeps[0], sweeps[1], "{name}: thread divergence");
        // And against the never-serialized original.
        let direct = sweep_values(&Oracle::new(artifact), n);
        assert_eq!(sweeps[0], direct, "{name}: roundtrip divergence");
    }
}

#[test]
fn save_load_roundtrip_through_a_file_preserves_answers() {
    let (_, g) = &workload_graphs()[0];
    let artifact = artifact_for(g, 0x53E7);
    let dir = std::env::temp_dir().join(format!("mte_serving_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("oracle.snap");
    artifact.write_to(&path).expect("atomic write");
    let loaded = OracleArtifact::read_from(&path).expect("read back");
    std::fs::remove_dir_all(&dir).ok();
    let n = g.n() as u32;
    let before = Oracle::new(artifact);
    let after = Oracle::new(loaded);
    for u in 0..n {
        for v in 0..n {
            let b = before.distance(u, v).expect("before").value;
            let a = after.distance(u, v).expect("after").value;
            assert!(a == b, "({u},{v}): {a} != {b}");
        }
    }
}
