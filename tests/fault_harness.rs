//! Differential fault-injection harness (PR 6 tentpole §4).
//!
//! The contract under test: **a fault either surfaces as a typed
//! [`RunError`] or it does not exist** — whenever a guarded run returns
//! `Ok`, its states must be bit-identical to the clean run's, for every
//! wired injection site × fault kind × thread count in {1, 4}. No third
//! outcome (silent corruption, torn state, hung pool) is acceptable.
//!
//! The fault registry is process-global, so every test that installs a
//! plan serializes on [`FAULT_LOCK`] and clears the registry before
//! releasing it. Expected injected panics are silenced with a no-op
//! panic hook for the duration of the sweep.

use metric_tree_embedding::core::arena::try_run_to_fixpoint_arena_with;
use metric_tree_embedding::core::catalog::SourceDetection;
use metric_tree_embedding::core::dense::{
    try_run_to_fixpoint_dense_with, try_run_to_fixpoint_switching_with, SwitchThresholds,
};
use metric_tree_embedding::core::engine::{try_run_to_fixpoint_with, EngineStrategy};
use metric_tree_embedding::core::oracle::try_oracle_run_to_fixpoint_with;
use metric_tree_embedding::core::simgraph::SimulatedGraph;
use metric_tree_embedding::core::{Degradation, RunError, RunReport};
use metric_tree_embedding::faults::{self, FaultKind, FaultPlan, FaultSite};
use metric_tree_embedding::graph::io::{read_gr, GraphParseError};
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes every test that touches the global fault registry.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the registry lock, silences the default panic hook (injected
/// panics are expected noise here), and guarantees `faults::clear()` +
/// hook restoration on drop — even when an assertion fails mid-sweep.
struct FaultGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl FaultGuard {
    fn acquire() -> FaultGuard {
        let lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faults::clear();
        std::panic::set_hook(Box::new(|_| {}));
        FaultGuard { _lock: lock }
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::clear();
        // The hook registry cannot be touched from a panicking thread
        // (it would abort the process, masking the assertion failure);
        // a failing test then leaves the no-op hook for the next guard
        // to replace, losing nothing but one backtrace.
        if !std::thread::panicking() {
            let _ = std::panic::take_hook();
        }
    }
}

/// Runs `f` on a dedicated pool of the given total parallelism.
fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build cannot fail")
        .install(f)
}

/// Large enough (`n > 2 × min_chunk_len`) that per-vertex parallel
/// operations decompose into multiple chunks and actually enter the
/// worker pool; the single-chunk inline regime is covered by the
/// oracle fixture's smaller graph.
fn fixture_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(0xFA01);
    gnm_graph(150, 430, 1.0..9.0, &mut rng)
}

fn oracle_fixture() -> (Graph, SimulatedGraph) {
    let mut rng = StdRng::seed_from_u64(0xFA02);
    let g = gnm_graph(40, 110, 1.0..8.0, &mut rng);
    let sim = SimulatedGraph::without_hopset(&g, 16, 0.2, &mut rng);
    (g, sim)
}

/// The pipelines a fault plan can be pointed at, each pairing a guarded
/// entry point with the sites it exercises.
#[derive(Clone, Copy, Debug)]
enum Pipeline {
    Owned,
    Arena,
    Dense,
    Switching,
    Oracle,
}

impl Pipeline {
    /// The (site, kind) pairs wired into this pipeline's hop loop.
    fn wired_faults(self) -> Vec<(FaultSite, FaultKind)> {
        match self {
            Pipeline::Owned => vec![
                (FaultSite::EngineHopCommit, FaultKind::Panic),
                (FaultSite::EngineHopCommit, FaultKind::PoisonNan),
                (FaultSite::WorkerChunk, FaultKind::Panic),
            ],
            Pipeline::Arena => vec![
                (FaultSite::EngineHopCommit, FaultKind::Panic),
                (FaultSite::ArenaSpanRead, FaultKind::Panic),
                (FaultSite::ArenaSpanRead, FaultKind::TruncateSpan),
                (FaultSite::WorkerChunk, FaultKind::Panic),
            ],
            Pipeline::Dense | Pipeline::Switching => vec![
                (FaultSite::EngineHopCommit, FaultKind::Panic),
                (FaultSite::EngineHopCommit, FaultKind::PoisonNan),
                (FaultSite::DenseRowKernel, FaultKind::Panic),
                (FaultSite::DenseRowKernel, FaultKind::PoisonNan),
                (FaultSite::WorkerChunk, FaultKind::Panic),
            ],
            Pipeline::Oracle => vec![
                (FaultSite::OracleLevelLoop, FaultKind::Panic),
                (FaultSite::OracleLevelLoop, FaultKind::PoisonNan),
                (FaultSite::WorkerChunk, FaultKind::Panic),
            ],
        }
    }

    /// Runs the pipeline guarded, returning the state vector on success.
    /// Every pipeline funnels into `Result<(states, report), RunError>`
    /// so one sweep loop covers all of them.
    fn run(
        self,
        g: &Graph,
        sim: &SimulatedGraph,
    ) -> Result<(Vec<DistanceMap>, RunReport), RunError> {
        let cap = g.n() + 1;
        let strategy = EngineStrategy::default();
        match self {
            Pipeline::Owned => {
                let alg = SourceDetection::k_ssp(g.n(), 4);
                try_run_to_fixpoint_with(&alg, g, cap, strategy)
                    .map(|(run, report)| (run.states, report))
            }
            Pipeline::Arena => {
                let alg = metric_tree_embedding::core::catalog::SourceDetection::k_ssp(g.n(), 4);
                try_run_to_fixpoint_arena_with(&alg, g, cap, strategy)
                    .map(|(run, report)| (run.states, report))
            }
            Pipeline::Dense => {
                let alg = SourceDetection::apsp(g.n());
                try_run_to_fixpoint_dense_with(&alg, g, cap, strategy, None)
                    .map(|(run, report)| (run.states, report))
            }
            Pipeline::Switching => {
                let alg = SourceDetection::apsp(g.n());
                let thresholds = SwitchThresholds {
                    row_density: 0.1,
                    saturation: 0.1,
                    revert: 0.01,
                    budget_bytes: None,
                };
                try_run_to_fixpoint_switching_with(&alg, g, cap, strategy, thresholds)
                    .map(|(run, report)| (run.states, report))
            }
            Pipeline::Oracle => {
                let alg = SourceDetection::apsp(g.n());
                try_oracle_run_to_fixpoint_with(&alg, sim, 4 * g.n(), strategy)
                    .map(|(run, report)| (run.states, report))
            }
        }
    }
}

const PIPELINES: [Pipeline; 5] = [
    Pipeline::Owned,
    Pipeline::Arena,
    Pipeline::Dense,
    Pipeline::Switching,
    Pipeline::Oracle,
];

/// The tentpole sweep: every pipeline × wired (site, kind) × arrival
/// index × thread count either errors typed or matches the clean run
/// bit for bit.
#[test]
fn every_injected_fault_errors_typed_or_leaves_output_bit_identical() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let (_og, sim) = oracle_fixture();

    for pipeline in PIPELINES {
        // Clean baseline per thread count (they must agree anyway, but
        // compare like with like).
        let mut baselines = Vec::new();
        for threads in [1usize, 4] {
            let (g, sim) = (&g, &sim);
            let clean = with_threads(threads, move || pipeline.run(g, sim))
                .unwrap_or_else(|e| panic!("clean {pipeline:?} run failed: {e}"));
            baselines.push(clean.0);
        }
        assert_eq!(
            baselines[0], baselines[1],
            "{pipeline:?}: clean thread divergence"
        );

        for (site, kind) in pipeline.wired_faults() {
            // nth 0 fires on the first arrival (always reached); a large
            // nth is never reached, exercising the armed-but-silent path.
            for nth in [0u64, 3, 1_000_000] {
                for (ti, threads) in [1usize, 4].into_iter().enumerate() {
                    faults::install(FaultPlan::single(site, kind, nth));
                    let (g, sim) = (&g, &sim);
                    let outcome = with_threads(threads, move || pipeline.run(g, sim));
                    faults::clear();
                    match outcome {
                        Err(RunError::InjectedFault { .. })
                        | Err(RunError::Panicked { .. })
                        | Err(RunError::CorruptState { .. }) => {}
                        Err(other) => panic!(
                            "{pipeline:?}/{site}/{kind}/nth={nth}/t={threads}: \
                             unexpected error class {other:?}"
                        ),
                        Ok((states, _)) => assert_eq!(
                            states, baselines[ti],
                            "{pipeline:?}/{site}/{kind}/nth={nth}/t={threads}: \
                             Ok run diverged from clean baseline"
                        ),
                    }
                }
            }
        }
    }
}

/// An injected panic at a specific arrival index maps to the
/// `InjectedFault` variant carrying its site — not a generic panic.
#[test]
fn injected_panics_carry_their_site_in_the_typed_error() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    faults::install(FaultPlan::single(
        FaultSite::EngineHopCommit,
        FaultKind::Panic,
        0,
    ));
    let out = try_run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::default());
    faults::clear();
    match out {
        Err(RunError::InjectedFault { site, kind }) => {
            assert_eq!(site, FaultSite::EngineHopCommit);
            assert_eq!(kind, FaultKind::Panic);
        }
        other => panic!("expected InjectedFault, got {other:?}"),
    }
}

/// A worker-chunk panic is isolated at the chunk boundary: the pool
/// survives, and the *same* pool completes a clean run afterwards.
#[test]
fn worker_pool_survives_a_chunk_panic() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let (g, alg) = (&g, &alg);
    with_threads(4, move || {
        let clean = try_run_to_fixpoint_with(alg, g, g.n() + 1, EngineStrategy::default())
            .expect("clean run");
        faults::install(FaultPlan::single(
            FaultSite::WorkerChunk,
            FaultKind::Panic,
            0,
        ));
        let faulted = try_run_to_fixpoint_with(alg, g, g.n() + 1, EngineStrategy::default());
        faults::clear();
        assert!(faulted.is_err(), "chunk panic must surface as an error");
        // Same pool, same workers: the panic did not wedge or kill them.
        let after = try_run_to_fixpoint_with(alg, g, g.n() + 1, EngineStrategy::default())
            .expect("post-fault run on the surviving pool");
        assert_eq!(after.0.states, clean.0.states);
        assert_eq!(after.1, clean.1);
    });
}

/// Graceful degradation: a dense budget too small for the `n × n` block
/// makes the switching engine decline the flip and finish sparse —
/// bit-identical to the owned reference, with the degradation recorded
/// in both `WorkStats` and the `RunReport`.
#[test]
fn dense_budget_exhaustion_degrades_to_sparse_bit_identically() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::apsp(g.n());
    let reference = try_run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::default())
        .expect("owned reference");
    // Aggressive flip thresholds + an 8-byte budget: the flip is
    // attempted early and must be declined every time.
    let thresholds = SwitchThresholds {
        row_density: 0.1,
        saturation: 0.1,
        revert: 0.01,
        budget_bytes: Some(8),
    };
    let (run, report) = try_run_to_fixpoint_switching_with(
        &alg,
        &g,
        g.n() + 1,
        EngineStrategy::default(),
        thresholds,
    )
    .expect("budget exhaustion must degrade, not fail");
    assert_eq!(run.states, reference.0.states, "degraded run diverged");
    assert_eq!(run.iterations, reference.0.iterations);
    assert_eq!(run.fixpoint, reference.0.fixpoint);
    assert!(run.work.dense_declined >= 1, "decline not counted");
    assert_eq!(
        run.work.dense_hops, 0,
        "no hop may run dense under an 8-byte budget"
    );
    assert!(
        report
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::DenseFlipDeclined { .. })),
        "degradation missing from the report: {report:?}"
    );
}

/// The same degradation driven by fault injection instead of a budget:
/// a simulated allocation failure at the flip is *handled* — the run
/// completes sparse and the audit does not convert it into an error.
#[test]
fn injected_alloc_failure_at_the_flip_is_absorbed() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::apsp(g.n());
    let reference = try_run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::default())
        .expect("owned reference");
    let thresholds = SwitchThresholds {
        row_density: 0.1,
        saturation: 0.1,
        revert: 0.01,
        budget_bytes: None,
    };
    faults::install(FaultPlan::single(
        FaultSite::DenseRowKernel,
        FaultKind::AllocFail,
        0,
    ));
    let out = try_run_to_fixpoint_switching_with(
        &alg,
        &g,
        g.n() + 1,
        EngineStrategy::default(),
        thresholds,
    );
    faults::clear();
    let (run, report) = out.expect("a handled alloc failure is a degradation, not an error");
    assert_eq!(run.states, reference.0.states);
    assert!(run.work.dense_declined >= 1);
    assert!(!report.degradations.is_empty());
}

/// A dense-only run has no sparse fallback: the budget violation is the
/// typed `DenseBudgetExceeded` error, raised before any allocation.
#[test]
fn dense_only_budget_violation_is_a_typed_error() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::apsp(g.n());
    let out =
        try_run_to_fixpoint_dense_with(&alg, &g, g.n() + 1, EngineStrategy::default(), Some(8));
    match out {
        Err(RunError::DenseBudgetExceeded {
            requested_bytes,
            budget_bytes,
        }) => {
            assert!(requested_bytes > budget_bytes);
            assert_eq!(budget_bytes, 8);
        }
        other => panic!(
            "expected DenseBudgetExceeded, got Ok/err {:?}",
            other.map(|_| ())
        ),
    }
}

/// A run that exhausts its iteration cap is not an error — it reports
/// `converged: false` with the hops it used.
#[test]
fn cap_exhaustion_reports_converged_false() {
    let _guard = FaultGuard::acquire();
    let g = path_graph(40, 1.0);
    let alg = SourceDetection::sssp(g.n(), 0);
    let (run, report) = try_run_to_fixpoint_with(&alg, &g, 3, EngineStrategy::default())
        .expect("cap exhaustion is not an error");
    assert!(!report.converged);
    assert_eq!(report.hops, 3);
    assert!(!run.fixpoint);
    // The full run converges and says so.
    let (_, full) =
        try_run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::default()).expect("full run");
    assert!(full.converged);
    assert!(full.hops > 3);
}

/// The injected parser I/O fault surfaces as the typed
/// `GraphParseError::Io`, not a panic — and is logged handled, so a
/// subsequent guarded engine run is not polluted by the stale fire.
#[test]
fn injected_parser_io_failure_is_a_typed_parse_error() {
    let _guard = FaultGuard::acquire();
    let doc = "p sp 3 2\na 1 2 1.5\na 2 3 2.0\n";
    faults::install(FaultPlan::single(FaultSite::GrParser, FaultKind::Io, 0));
    let out = read_gr(doc.as_bytes());
    faults::clear();
    assert!(
        matches!(out, Err(GraphParseError::Io(_))),
        "expected Io error, got {out:?}"
    );
    // The fire was handled: a fresh guarded run sees a clean audit.
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    try_run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::default())
        .expect("stale handled fire must not fail a later run");
}

/// `MTE_FAULT_PLAN`-style specs parse into the same plans the builder
/// produces, and bad specs are rejected with a message.
#[test]
fn fault_plan_spec_round_trip() {
    let parsed = FaultPlan::parse("engine_hop_commit:panic:0;gr_parser:io:2:3").expect("valid");
    let built = FaultPlan::new()
        .inject(FaultSite::EngineHopCommit, FaultKind::Panic, 0)
        .inject(FaultSite::GrParser, FaultKind::Io, 2);
    // Hit counts differ (3 vs default), so compare debug forms loosely:
    // both must list the same sites in order.
    let (p, b) = (format!("{parsed:?}"), format!("{built:?}"));
    assert!(p.contains("EngineHopCommit") && p.contains("GrParser"));
    assert!(b.contains("EngineHopCommit") && b.contains("GrParser"));
    // analyze: fault-spec-ok(negative parse test)
    assert!(FaultPlan::parse("no_such_site:panic:0").is_err());
    // analyze: fault-spec-ok(negative parse test)
    assert!(FaultPlan::parse("engine_hop_commit:no_such_kind:0").is_err());
}

// ---------------------------------------------------------------------
// Snapshot fault sites (PR 8): `snapshot_write` corrupts the encoded
// image, `snapshot_read` injects a load failure. Same contract as the
// engine sites — typed error or bit-identical — plus the recovery
// ladder must absorb them within its budget.
// ---------------------------------------------------------------------

use metric_tree_embedding::core::checkpoint::{
    try_resume_run_to_fixpoint_with, try_run_checkpointed_with, Checkpoint, CheckpointPolicy,
};
use metric_tree_embedding::core::{RecoveryPolicy, Supervisor};
use metric_tree_embedding::persist::{SnapshotReader, SnapshotWriter};
use std::cell::RefCell;

/// A run that round-trips every checkpoint through the full persistence
/// stack (encode → decode), then re-verifies the last good checkpoint by
/// resuming from it. Exercises both snapshot sites once per capture.
fn checkpointed_roundtrip_run(g: &Graph) -> Result<(Vec<DistanceMap>, RunReport), RunError> {
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    let last_good: RefCell<Option<Checkpoint<DistanceMap>>> = RefCell::new(None);
    let (run, report) = try_run_checkpointed_with(
        &alg,
        g,
        cap,
        strategy,
        CheckpointPolicy::every_hops(1),
        |ckpt| {
            let image = SnapshotWriter::new().put_checkpoint(ckpt).encode();
            let decoded = SnapshotReader::decode(&image)
                .and_then(|r| r.checkpoint())
                .map_err(|e| RunError::SnapshotCorrupt {
                    detail: e.to_string(),
                })?;
            *last_good.borrow_mut() = Some(decoded);
            Ok(())
        },
    )?;
    if let Some(ckpt) = last_good.into_inner() {
        let (resumed, _) = try_resume_run_to_fixpoint_with(&alg, g, cap, strategy, &ckpt)?;
        assert_eq!(
            resumed.states, run.states,
            "resume from a decoded checkpoint diverged"
        );
        assert_eq!(resumed.iterations, run.iterations);
    }
    Ok((run.states, report))
}

/// The snapshot-site sweep: both sites × kinds × arrival index × thread
/// count either error typed or leave the checkpointed run bit-identical
/// to the clean baseline.
#[test]
fn snapshot_faults_error_typed_or_leave_output_bit_identical() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();

    let mut baselines = Vec::new();
    for threads in [1usize, 4] {
        let g = &g;
        let clean = with_threads(threads, move || checkpointed_roundtrip_run(g))
            .unwrap_or_else(|e| panic!("clean checkpointed run failed: {e}"));
        baselines.push(clean.0);
    }
    assert_eq!(baselines[0], baselines[1], "clean thread divergence");

    let wired = [
        (FaultSite::SnapshotWrite, FaultKind::Panic),
        (FaultSite::SnapshotWrite, FaultKind::Io),
        (FaultSite::SnapshotRead, FaultKind::Panic),
        (FaultSite::SnapshotRead, FaultKind::Io),
    ];
    for (site, kind) in wired {
        for nth in [0u64, 3, 1_000_000] {
            for (ti, threads) in [1usize, 4].into_iter().enumerate() {
                faults::install(FaultPlan::single(site, kind, nth));
                let g = &g;
                let outcome = with_threads(threads, move || checkpointed_roundtrip_run(g));
                faults::clear();
                match outcome {
                    Err(RunError::InjectedFault { .. })
                    | Err(RunError::Panicked { .. })
                    | Err(RunError::SnapshotCorrupt { .. }) => {}
                    Err(other) => panic!(
                        "{site}/{kind}/nth={nth}/t={threads}: unexpected error class {other:?}"
                    ),
                    Ok((states, _)) => assert_eq!(
                        states, baselines[ti],
                        "{site}/{kind}/nth={nth}/t={threads}: Ok run diverged"
                    ),
                }
            }
        }
    }
}

/// The supervisor's retry rung: a one-shot engine fault kills the
/// primary attempt after checkpoints were captured; the retry resumes
/// from the last good checkpoint and must reproduce the clean run bit
/// for bit, within the policy's attempt budget, with the ladder
/// recorded.
#[test]
fn supervisor_recovers_from_checkpoint_within_budget() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    let clean = try_run_to_fixpoint_with(&alg, &g, cap, strategy).expect("clean run");

    for threads in [1usize, 4] {
        // One-shot fault on the 4th hop commit: the primary attempt has
        // checkpoints from hops 1–3 in hand when it dies.
        faults::install(FaultPlan::single(
            FaultSite::EngineHopCommit,
            FaultKind::Panic,
            3,
        ));
        let last_good: Mutex<Option<Checkpoint<DistanceMap>>> = Mutex::new(None);
        let (g, alg, last_good) = (&g, &alg, &last_good);
        let outcome = with_threads(threads, move || {
            Supervisor::new(RecoveryPolicy::default()).run(|attempt| {
                use metric_tree_embedding::core::RecoveryAttempt;
                match attempt {
                    RecoveryAttempt::Primary => try_run_checkpointed_with(
                        alg,
                        g,
                        cap,
                        strategy,
                        CheckpointPolicy::every_hops(1),
                        |ckpt| {
                            let image = SnapshotWriter::new().put_checkpoint(ckpt).encode();
                            let decoded = SnapshotReader::decode(&image)
                                .and_then(|r| r.checkpoint())
                                .map_err(|e| RunError::SnapshotCorrupt {
                                    detail: e.to_string(),
                                })?;
                            *last_good.lock().unwrap() = Some(decoded);
                            Ok(())
                        },
                    )
                    .map(|(run, report)| (run.states, report)),
                    RecoveryAttempt::RetryFromCheckpoint { .. } => {
                        let ckpt = last_good.lock().unwrap();
                        let ckpt = ckpt.as_ref().expect("primary captured checkpoints");
                        try_resume_run_to_fixpoint_with(alg, g, cap, strategy, ckpt)
                            .map(|(run, report)| (run.states, report))
                    }
                    RecoveryAttempt::Scratch => try_run_to_fixpoint_with(alg, g, cap, strategy)
                        .map(|(run, report)| (run.states, report)),
                }
            })
        });
        faults::clear();
        let (states, report) = outcome.expect("supervisor must recover a one-shot fault");
        assert_eq!(states, clean.0.states, "t={threads}: recovery diverged");
        assert!(
            report
                .degradations
                .iter()
                .any(|d| matches!(d, Degradation::RecoveredFromCheckpoint { attempt, .. } if *attempt <= RecoveryPolicy::default().max_retries)),
            "t={threads}: ladder not recorded: {report:?}"
        );
    }
}

/// The supervisor's scratch rung: a corrupt snapshot load poisons both
/// the primary attempt and the checkpoint store, so the ladder skips
/// the retry rung and recomputes from scratch — still bit-identical.
#[test]
fn supervisor_falls_back_to_scratch_on_snapshot_corruption() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    let clean = try_run_to_fixpoint_with(&alg, &g, cap, strategy).expect("clean run");

    // Every snapshot decode fails: checkpoints are unusable for the
    // whole test.
    faults::install(FaultPlan::parse("snapshot_read:io:0:1000000").expect("valid plan"));
    let result = Supervisor::new(RecoveryPolicy::default()).run(|attempt| {
        use metric_tree_embedding::core::RecoveryAttempt;
        match attempt {
            RecoveryAttempt::Primary => try_run_checkpointed_with(
                &alg,
                &g,
                cap,
                strategy,
                CheckpointPolicy::every_hops(1),
                |ckpt| {
                    let image = SnapshotWriter::new().put_checkpoint(ckpt).encode();
                    SnapshotReader::decode(&image)
                        .and_then(|r| r.checkpoint())
                        .map_err(|e| RunError::SnapshotCorrupt {
                            detail: e.to_string(),
                        })?;
                    Ok(())
                },
            )
            .map(|(run, report)| (run.states, report)),
            RecoveryAttempt::RetryFromCheckpoint { .. } => {
                panic!("retry rung must be skipped when the snapshot store is corrupt")
            }
            // Scratch runs without checkpoint sinks, so the armed
            // snapshot_read plan is never consulted again.
            RecoveryAttempt::Scratch => try_run_to_fixpoint_with(&alg, &g, cap, strategy)
                .map(|(run, report)| (run.states, report)),
        }
    });
    faults::clear();
    let (states, report) = result.expect("scratch rung must succeed");
    assert_eq!(states, clean.0.states);
    assert!(
        report
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::RecomputedFromScratch { .. })),
        "scratch rung not recorded: {report:?}"
    );
}
