//! Differential tests for the PR 3 hot-path rewrites: the rank-pruned
//! merge kernels, the frontier-list schedule, and the oracle's
//! carry-over seeding must all be **bit-identical** to the PR 1/PR 2
//! reference paths (merge-everything-then-filter, bitset-style full
//! recompute scheduling, all-dirty level restarts) — pruning and
//! carry-over may only change *work counters*, never states, iteration
//! counts, or fixpoint flags. Each comparison also runs under thread
//! pools of size 1 and 4, pinning the `MTE_THREADS` determinism
//! guarantee through the new schedule.

use metric_tree_embedding::algebra::NodeId;
use metric_tree_embedding::core::arena::{
    initial_store, oracle_run_arena_with_schedule, run_to_fixpoint_arena_with, ArenaEngine,
    ArenaMbfAlgorithm,
};
use metric_tree_embedding::core::catalog::{Connectivity, SourceDetection, WidestPaths};
use metric_tree_embedding::core::dense::{
    oracle_run_dense_with_schedule, run_to_fixpoint_dense_with, run_to_fixpoint_switching_with,
    SwitchThresholds, SwitchingEngine,
};
use metric_tree_embedding::core::engine::{
    initial_states, run_to_fixpoint_with, EngineStrategy, MbfAlgorithm, MbfEngine,
};
use metric_tree_embedding::core::frt::le_list::{le_lists_oracle_with, LeListAlgorithm, Ranks};
use metric_tree_embedding::core::frt::LeList;
use metric_tree_embedding::core::oracle::{oracle_run_with_schedule, OracleRun};
use metric_tree_embedding::core::simgraph::SimulatedGraph;
use metric_tree_embedding::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// [`LeListAlgorithm`] stripped of its `recompute_into` override: the
/// delegating wrapper inherits the trait's default merge-everything-
/// then-filter pipeline, i.e. the PR 1 reference path the pruned merge
/// must reproduce bit for bit.
struct UnprunedLeList(LeListAlgorithm);

impl MbfAlgorithm for UnprunedLeList {
    type S = MinPlus;
    type M = DistanceMap;

    fn edge_coeff(&self, v: NodeId, w: NodeId, weight: f64) -> MinPlus {
        self.0.edge_coeff(v, w, weight)
    }

    fn filter(&self, x: &mut DistanceMap) {
        self.0.filter(x);
    }

    fn init(&self, v: NodeId) -> DistanceMap {
        self.0.init(v)
    }

    fn propagate_into(&self, acc: &mut DistanceMap, state: &DistanceMap, coeff: &MinPlus) {
        self.0.propagate_into(acc, state, coeff);
    }

    fn state_size(&self, x: &DistanceMap) -> usize {
        self.0.state_size(x)
    }
}

/// Runs `f` on a dedicated pool of the given total parallelism.
fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build cannot fail")
        .install(f)
}

/// The engine strategies under differential test.
const STRATEGIES: [EngineStrategy; 3] = [
    EngineStrategy::Dense,
    EngineStrategy::Frontier,
    EngineStrategy::Hybrid {
        dense_threshold: 0.25,
    },
];

fn workload_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(0x53E1);
    vec![
        ("gnm sparse", gnm_graph(70, 180, 1.0..10.0, &mut rng)),
        ("grid 9x9", grid_graph(9, 9, 1.0..5.0, &mut rng)),
        ("path", path_graph(56, 1.0)),
    ]
}

// ---------------------------------------------------------------------
// Engine level: pruned merge kernels vs merge-then-filter reference.
// ---------------------------------------------------------------------

#[test]
fn pruned_le_merge_bit_identical_to_reference_and_cheaper() {
    for (name, g) in workload_graphs() {
        let ranks = Arc::new(Ranks::sample(g.n(), &mut StdRng::seed_from_u64(0x53E2)));
        let pruned_alg = LeListAlgorithm::new(Arc::clone(&ranks));
        let reference_alg = UnprunedLeList(LeListAlgorithm::new(Arc::clone(&ranks)));
        for strategy in STRATEGIES {
            let pruned = run_to_fixpoint_with(&pruned_alg, &g, g.n() + 1, strategy);
            let reference = run_to_fixpoint_with(&reference_alg, &g, g.n() + 1, strategy);
            assert_eq!(
                pruned.states, reference.states,
                "{name}/{strategy:?}: pruned merge diverged from merge-then-filter"
            );
            assert_eq!(
                pruned.iterations, reference.iterations,
                "{name}/{strategy:?}"
            );
            assert_eq!(pruned.fixpoint, reference.fixpoint, "{name}/{strategy:?}");
            // The pruned path admits a strict subset of entries on these
            // workloads (Lemma 7.6: most incoming entries are dominated).
            assert!(
                pruned.work.entries_processed < reference.work.entries_processed,
                "{name}/{strategy:?}: pruned {} !< reference {}",
                pruned.work.entries_processed,
                reference.work.entries_processed
            );
            // Scheduling counters are untouched by the merge kernel.
            assert_eq!(
                pruned.work.edge_relaxations,
                reference.work.edge_relaxations
            );
            assert_eq!(
                pruned.work.touched_vertices,
                reference.work.touched_vertices
            );
        }
    }
}

#[test]
fn pruned_le_merge_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0x53E3);
    let g = gnm_graph(300, 900, 1.0..9.0, &mut rng);
    let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
    let g = &g;
    let run = |threads: usize, pruned: bool| {
        let ranks = Arc::clone(&ranks);
        with_threads(threads, move || {
            if pruned {
                run_to_fixpoint_with(
                    &LeListAlgorithm::new(ranks),
                    g,
                    g.n() + 1,
                    EngineStrategy::Frontier,
                )
            } else {
                run_to_fixpoint_with(
                    &UnprunedLeList(LeListAlgorithm::new(ranks)),
                    g,
                    g.n() + 1,
                    EngineStrategy::Frontier,
                )
            }
        })
    };
    let reference = run(1, false);
    for threads in [1, 4] {
        let pruned = run(threads, true);
        assert_eq!(
            pruned.states, reference.states,
            "pruned run on {threads} threads diverged"
        );
        assert_eq!(pruned.iterations, reference.iterations);
    }
    assert_eq!(run(4, false).states, reference.states);
}

// ---------------------------------------------------------------------
// Engine level: `mark_dirty` carry-over vs all-dirty restart.
// ---------------------------------------------------------------------

#[test]
fn mark_dirty_carry_over_matches_all_dirty_restart() {
    let mut rng = StdRng::seed_from_u64(0x53E4);
    let g = gnm_graph(90, 260, 1.0..8.0, &mut rng);
    let alg = SourceDetection::k_ssp(g.n(), 4);

    // Run a few hops so the continuing engine holds a genuine residual
    // frontier (the run is not yet at its fixpoint).
    let mut states = initial_states(&alg, g.n());
    let mut carry_engine = MbfEngine::new(EngineStrategy::Frontier);
    carry_engine.mark_all_dirty(&g);
    for _ in 0..3 {
        carry_engine.step(&alg, &g, &mut states, 1.0);
    }

    // External sparse edit: re-seed a few vertices, as the oracle's
    // projection diff does between simulated rounds.
    let edited: Vec<NodeId> = vec![3, 41, 77];
    for &v in &edited {
        states[v as usize] = alg.init((v + 1) % g.n() as NodeId);
    }
    let mut restart_states = states.clone();

    // Carry-over: seed only the edited vertices on the live engine.
    carry_engine.mark_dirty(&g, edited.iter().copied());
    // Reference: a fresh engine restarted all-dirty on the same vector.
    let mut restart_engine = MbfEngine::new(EngineStrategy::Frontier);
    restart_engine.mark_all_dirty(&g);

    for hop in 0..g.n() + 1 {
        let (_, carry_changed) = carry_engine.step(&alg, &g, &mut states, 1.0);
        let (_, restart_changed) = restart_engine.step(&alg, &g, &mut restart_states, 1.0);
        assert_eq!(
            states, restart_states,
            "hop {hop}: carry-over schedule diverged from all-dirty restart"
        );
        if !carry_changed && !restart_changed {
            return;
        }
    }
    panic!("no fixpoint within n + 1 hops");
}

// ---------------------------------------------------------------------
// Oracle level: projection carry-over vs all-dirty level restarts.
// ---------------------------------------------------------------------

fn oracle_fixture() -> (Graph, SimulatedGraph) {
    let mut rng = StdRng::seed_from_u64(0x53E5);
    let g = gnm_graph(140, 380, 1.0..6.0, &mut rng);
    let sim = SimulatedGraph::without_hopset(&g, 24, 0.15, &mut rng);
    (g, sim)
}

fn assert_oracle_runs_agree<M: PartialEq + std::fmt::Debug>(
    carry: &OracleRun<M>,
    restart: &OracleRun<M>,
    label: &str,
) {
    assert_eq!(
        carry.states, restart.states,
        "{label}: carry-over diverged from all-dirty restart"
    );
    assert_eq!(carry.h_iterations, restart.h_iterations, "{label}");
    assert_eq!(carry.fixpoint, restart.fixpoint, "{label}");
    assert!(
        carry.work.touched_vertices <= restart.work.touched_vertices,
        "{label}: carry-over touched {} > restart {}",
        carry.work.touched_vertices,
        restart.work.touched_vertices
    );
}

#[test]
fn oracle_carry_over_bit_identical_to_all_dirty_restart() {
    let (g, sim) = oracle_fixture();
    let cap = 4 * g.n();
    for strategy in STRATEGIES {
        let kssp = SourceDetection::k_ssp(g.n(), 5);
        let carry = oracle_run_with_schedule(&kssp, &sim, cap, strategy, true);
        let restart = oracle_run_with_schedule(&kssp, &sim, cap, strategy, false);
        assert_oracle_runs_agree(&carry, &restart, &format!("k-ssp/{strategy:?}"));

        let ranks = Arc::new(Ranks::sample(g.n(), &mut StdRng::seed_from_u64(0x53E6)));
        let le = LeListAlgorithm::new(ranks);
        let carry = oracle_run_with_schedule(&le, &sim, cap, strategy, true);
        let restart = oracle_run_with_schedule(&le, &sim, cap, strategy, false);
        assert_oracle_runs_agree(&carry, &restart, &format!("le-lists/{strategy:?}"));
        // Multi-round oracle runs must see the savings the carry-over
        // exists for: later rounds touch only what the projection moved.
        // (Dense hops recompute all of V regardless of seeding, so the
        // strict saving only shows under frontier-based strategies.)
        if strategy != EngineStrategy::Dense {
            assert!(
                carry.work.touched_vertices < restart.work.touched_vertices,
                "le-lists/{strategy:?}: carry-over saved nothing"
            );
        }
    }
}

#[test]
fn oracle_carry_over_bit_identical_across_thread_counts() {
    let (g, sim) = oracle_fixture();
    let ranks = Arc::new(Ranks::sample(g.n(), &mut StdRng::seed_from_u64(0x53E7)));
    let cap = 4 * g.n();
    let run = |threads: usize, carry_over: bool| {
        let ranks = Arc::clone(&ranks);
        let sim = &sim;
        with_threads(threads, move || {
            oracle_run_with_schedule(
                &LeListAlgorithm::new(ranks),
                sim,
                cap,
                EngineStrategy::Frontier,
                carry_over,
            )
        })
    };
    let reference = run(1, false);
    for threads in [1, 4] {
        for carry_over in [true, false] {
            let r = run(threads, carry_over);
            assert_eq!(
                r.states, reference.states,
                "{threads} threads, carry_over {carry_over}: states diverged"
            );
            assert_eq!(r.h_iterations, reference.h_iterations);
            assert_eq!(r.fixpoint, reference.fixpoint);
        }
    }
}

// ---------------------------------------------------------------------
// Full FRT pipeline: production path (pruned merges + carry-over) vs
// the unpruned all-dirty reference, across thread counts.
// ---------------------------------------------------------------------

#[test]
fn frt_le_list_pipeline_matches_unpruned_all_dirty_reference() {
    let (g, sim) = oracle_fixture();
    let ranks = Arc::new(Ranks::sample(g.n(), &mut StdRng::seed_from_u64(0x53E8)));
    let cap = 4 * g.n();

    // The PR 1/PR 2 reference: default recompute (merge everything,
    // then filter) with every level restarting all-dirty each round.
    let reference = oracle_run_with_schedule(
        &UnprunedLeList(LeListAlgorithm::new(Arc::clone(&ranks))),
        &sim,
        cap,
        EngineStrategy::Frontier,
        false,
    );
    let reference_lists: Vec<LeList> = reference
        .states
        .iter()
        .map(|x| LeList::from_distance_map(x, &ranks))
        .collect();

    for threads in [1, 4] {
        let ranks = Arc::clone(&ranks);
        let sim = &sim;
        let (lists, h_iterations, _) = with_threads(threads, move || {
            le_lists_oracle_with(sim, &ranks, Some(cap), EngineStrategy::Frontier)
        });
        assert_eq!(h_iterations, reference.h_iterations, "{threads} threads");
        for (v, (got, want)) in lists.iter().zip(&reference_lists).enumerate() {
            assert_eq!(
                got.entries(),
                want.entries(),
                "LE list of node {v} diverged on {threads} threads"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Storage backends: the epoch-arena engine/oracle must be bit-identical
// to the owned-Vec reference — states, iteration counts, fixpoint
// flags, and the model-level schedule counters (only the storage
// counters may differ between backends).
// ---------------------------------------------------------------------

fn assert_backends_agree<A>(alg: &A, g: &Graph, label: &str)
where
    A: ArenaMbfAlgorithm,
{
    let cap = g.n() + 1;
    for strategy in STRATEGIES {
        let owned = run_to_fixpoint_with(alg, g, cap, strategy);
        let arena = run_to_fixpoint_arena_with(alg, g, cap, strategy);
        assert_eq!(
            owned.states, arena.states,
            "{label}/{strategy:?}: arena backend diverged from owned"
        );
        assert_eq!(owned.iterations, arena.iterations, "{label}/{strategy:?}");
        assert_eq!(owned.fixpoint, arena.fixpoint, "{label}/{strategy:?}");
        // Absorption-stable skipping never changes which entries are
        // admitted — only how many merges run — so `entries_processed`
        // matches exactly while relaxations may only shrink.
        assert_eq!(
            owned.work.entries_processed, arena.work.entries_processed,
            "{label}/{strategy:?}"
        );
        assert!(
            arena.work.edge_relaxations <= owned.work.edge_relaxations,
            "{label}/{strategy:?}: arena relaxed more edges than owned"
        );
        assert_eq!(owned.work.touched_vertices, arena.work.touched_vertices);
    }
}

#[test]
fn arena_engine_bit_identical_to_owned_reference() {
    for (name, g) in workload_graphs() {
        let ranks = Arc::new(Ranks::sample(g.n(), &mut StdRng::seed_from_u64(0x53E9)));
        assert_backends_agree(
            &LeListAlgorithm::new(Arc::clone(&ranks)),
            &g,
            &format!("{name}/le"),
        );
        assert_backends_agree(
            &SourceDetection::k_ssp(g.n(), 4),
            &g,
            &format!("{name}/kssp"),
        );
        assert_backends_agree(
            &SourceDetection::sssp(g.n(), 1),
            &g,
            &format!("{name}/sssp"),
        );
    }
}

#[test]
fn arena_engine_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0x53EA);
    let g = gnm_graph(300, 900, 1.0..9.0, &mut rng);
    let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
    let g = &g;
    let run = |threads: usize| {
        let ranks = Arc::clone(&ranks);
        with_threads(threads, move || {
            run_to_fixpoint_arena_with(
                &LeListAlgorithm::new(ranks),
                g,
                g.n() + 1,
                EngineStrategy::Frontier,
            )
        })
    };
    let r1 = run(1);
    let r4 = run(4);
    assert_eq!(r1.states, r4.states, "arena states differ across threads");
    // The arena's pool layout and compaction schedule are deterministic,
    // so even the storage counters are bit-identical across threads.
    assert_eq!(
        r1.work, r4.work,
        "arena work counters differ across threads"
    );
    assert_eq!(r1.iterations, r4.iterations);
}

#[test]
fn arena_oracle_bit_identical_to_owned_oracle() {
    let (g, sim) = oracle_fixture();
    let cap = 4 * g.n();
    let ranks = Arc::new(Ranks::sample(g.n(), &mut StdRng::seed_from_u64(0x53EB)));
    for strategy in [EngineStrategy::Frontier, EngineStrategy::default()] {
        for carry_over in [true, false] {
            let le = LeListAlgorithm::new(Arc::clone(&ranks));
            let owned = oracle_run_with_schedule(&le, &sim, cap, strategy, carry_over);
            let arena = oracle_run_arena_with_schedule(&le, &sim, cap, strategy, carry_over);
            assert_eq!(
                owned.states, arena.states,
                "oracle/{strategy:?}/carry={carry_over}: arena diverged"
            );
            assert_eq!(owned.h_iterations, arena.h_iterations);
            assert_eq!(owned.fixpoint, arena.fixpoint);

            let kssp = SourceDetection::k_ssp(g.n(), 5);
            let owned = oracle_run_with_schedule(&kssp, &sim, cap, strategy, carry_over);
            let arena = oracle_run_arena_with_schedule(&kssp, &sim, cap, strategy, carry_over);
            assert_eq!(owned.states, arena.states);
            assert_eq!(owned.h_iterations, arena.h_iterations);
            assert_eq!(owned.fixpoint, arena.fixpoint);
        }
    }
}

// ---------------------------------------------------------------------
// Dense-block backend: flat matrix kernels must be bit-identical to the
// owned reference — min over f64 is order-independent and every dense
// relaxation computes the same single `x + w` the sparse merges do, so
// the comparison is exact equality, not approximate.
// ---------------------------------------------------------------------

#[test]
fn dense_block_backend_bit_identical_to_owned() {
    for (name, g) in workload_graphs() {
        for strategy in STRATEGIES {
            // APSP: the headline dense workload.
            let alg = SourceDetection::apsp(g.n());
            let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, strategy);
            let dense = run_to_fixpoint_dense_with(&alg, &g, g.n() + 1, strategy);
            assert_eq!(
                owned.states, dense.states,
                "{name}/{strategy:?}: dense apsp diverged from owned"
            );
            assert_eq!(owned.iterations, dense.iterations, "{name}/{strategy:?}");
            assert_eq!(owned.fixpoint, dense.fixpoint, "{name}/{strategy:?}");
            // Shared schedule: the scheduling counters agree exactly
            // (entries_processed counts a different currency — dense
            // coordinates — and is not compared).
            // The dense backend may skip provably-absorbed merges, so its
            // relaxation count can only be lower.
            assert!(dense.work.edge_relaxations <= owned.work.edge_relaxations);
            assert_eq!(owned.work.touched_vertices, dense.work.touched_vertices);

            // Boolean semiring: all-pairs connectivity.
            let alg = Connectivity::all_pairs(g.n());
            let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, strategy);
            let dense = run_to_fixpoint_dense_with(&alg, &g, g.n() + 1, strategy);
            assert_eq!(
                owned.states, dense.states,
                "{name}/{strategy:?}/connectivity"
            );
            assert_eq!(owned.iterations, dense.iterations);

            // Max-min semiring: all-pairs widest paths.
            let alg = WidestPaths::apwp(g.n());
            let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, strategy);
            let dense = run_to_fixpoint_dense_with(&alg, &g, g.n() + 1, strategy);
            assert_eq!(owned.states, dense.states, "{name}/{strategy:?}/widest");
            assert_eq!(owned.iterations, dense.iterations);
        }
    }
}

#[test]
fn dense_block_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0x53EC);
    let g = gnm_graph(180, 520, 1.0..9.0, &mut rng);
    let alg = SourceDetection::apsp(g.n());
    let g = &g;
    let alg = &alg;
    let run = |threads: usize| {
        with_threads(threads, move || {
            run_to_fixpoint_dense_with(alg, g, g.n() + 1, EngineStrategy::default())
        })
    };
    let reference = with_threads(1, move || {
        run_to_fixpoint_with(alg, g, g.n() + 1, EngineStrategy::default())
    });
    for threads in [1, 4] {
        let dense = run(threads);
        assert_eq!(
            dense.states, reference.states,
            "dense run on {threads} threads diverged"
        );
        assert_eq!(dense.iterations, reference.iterations);
        assert_eq!(dense.fixpoint, reference.fixpoint);
    }
    // And the two dense runs agree on every counter (the reduction
    // tree is thread-count independent).
    assert_eq!(run(1).work, run(4).work);
}

#[test]
fn switching_engine_bit_identical_across_thread_counts_and_thresholds() {
    let mut rng = StdRng::seed_from_u64(0x53ED);
    let g = gnm_graph(120, 340, 1.0..8.0, &mut rng);
    let alg = SourceDetection::apsp(g.n());
    let owned = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::default());
    let g = &g;
    let alg = &alg;
    for thresholds in [
        SwitchThresholds::default(),
        // Aggressive: flips early in the run.
        SwitchThresholds {
            row_density: 0.1,
            saturation: 0.1,
            revert: 0.01,
            budget_bytes: None,
        },
        // Unreachable: stays sparse throughout.
        SwitchThresholds {
            row_density: 2.0,
            saturation: 2.0,
            revert: 0.0,
            budget_bytes: None,
        },
    ] {
        let run = |threads: usize| {
            with_threads(threads, move || {
                run_to_fixpoint_switching_with(
                    alg,
                    g,
                    g.n() + 1,
                    EngineStrategy::default(),
                    thresholds,
                )
            })
        };
        let r1 = run(1);
        assert_eq!(
            r1.states, owned.states,
            "{thresholds:?}: switching run diverged from owned"
        );
        assert_eq!(r1.iterations, owned.iterations, "{thresholds:?}");
        assert_eq!(r1.fixpoint, owned.fixpoint, "{thresholds:?}");
        let r4 = run(4);
        assert_eq!(r1.states, r4.states, "{thresholds:?}: thread divergence");
        // The switching decisions are driven by deterministic density
        // statistics: even the switching counters are thread-invariant.
        assert_eq!(r1.work, r4.work, "{thresholds:?}");
    }
}

#[test]
fn dense_oracle_bit_identical_to_owned_oracle_across_threads() {
    let (g, sim) = oracle_fixture();
    let cap = 4 * g.n();
    let alg = SourceDetection::apsp(g.n());
    let reference = oracle_run_with_schedule(&alg, &sim, cap, EngineStrategy::Frontier, true);
    let sim = &sim;
    let alg = &alg;
    for threads in [1, 4] {
        for carry_over in [true, false] {
            let dense = with_threads(threads, move || {
                oracle_run_dense_with_schedule(alg, sim, cap, EngineStrategy::Frontier, carry_over)
            });
            assert_eq!(
                dense.states, reference.states,
                "{threads} threads, carry={carry_over}: dense oracle diverged"
            );
            assert_eq!(dense.h_iterations, reference.h_iterations);
            assert_eq!(dense.fixpoint, reference.fixpoint);
        }
    }
}

// ---------------------------------------------------------------------
// Property fuzz: random (possibly disconnected) graphs.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pruned merges and the carry-over oracle schedule agree with their
    /// references on arbitrary random graphs (two components keep the
    /// disconnected case in every batch).
    #[test]
    fn random_graphs_pruned_and_carry_over_match_reference(
        n in 3usize..26,
        extra in 0usize..36,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n2 = 1 + n / 3;
        let mut edges: Vec<(NodeId, NodeId, f64)> =
            gnm_graph(n, (n - 1 + extra).min(n * (n - 1) / 2), 1.0..9.0, &mut rng)
                .edges()
                .collect();
        if n2 >= 2 {
            edges.extend(
                gnm_graph(n2, n2 - 1, 1.0..9.0, &mut rng)
                    .edges()
                    .map(|(u, v, w)| (u + n as NodeId, v + n as NodeId, w)),
            );
        }
        let g = Graph::from_edges(n + n2, edges);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));

        // Engine: pruned vs merge-then-filter, all strategies.
        for strategy in STRATEGIES {
            let pruned =
                run_to_fixpoint_with(&LeListAlgorithm::new(Arc::clone(&ranks)), &g, g.n() + 1, strategy);
            let reference = run_to_fixpoint_with(
                &UnprunedLeList(LeListAlgorithm::new(Arc::clone(&ranks))),
                &g,
                g.n() + 1,
                strategy,
            );
            prop_assert_eq!(&pruned.states, &reference.states);
            prop_assert_eq!(pruned.iterations, reference.iterations);
            prop_assert!(pruned.work.entries_processed <= reference.work.entries_processed);
        }

        // Oracle: carry-over vs all-dirty restarts.
        let sim = SimulatedGraph::without_hopset(&g, 12, 0.2, &mut rng);
        let le = LeListAlgorithm::new(Arc::clone(&ranks));
        let carry = oracle_run_with_schedule(&le, &sim, 3 * g.n(), EngineStrategy::Frontier, true);
        let restart = oracle_run_with_schedule(&le, &sim, 3 * g.n(), EngineStrategy::Frontier, false);
        prop_assert_eq!(&carry.states, &restart.states);
        prop_assert_eq!(carry.h_iterations, restart.h_iterations);
        prop_assert_eq!(carry.fixpoint, restart.fixpoint);
        prop_assert!(carry.work.touched_vertices <= restart.work.touched_vertices);

        // Storage backends: arena engine and oracle vs the owned paths.
        let arena = run_to_fixpoint_arena_with(&le, &g, g.n() + 1, EngineStrategy::Frontier);
        let owned = run_to_fixpoint_with(&le, &g, g.n() + 1, EngineStrategy::Frontier);
        prop_assert_eq!(&arena.states, &owned.states);
        prop_assert_eq!(arena.iterations, owned.iterations);
        let arena_oracle =
            oracle_run_arena_with_schedule(&le, &sim, 3 * g.n(), EngineStrategy::Frontier, true);
        prop_assert_eq!(&arena_oracle.states, &carry.states);
        prop_assert_eq!(arena_oracle.h_iterations, carry.h_iterations);
        prop_assert_eq!(arena_oracle.fixpoint, carry.fixpoint);
    }

    /// Sparse external edits (copy-on-write `assign` + `mark_dirty`
    /// carry-over) interleaved with forced pool compactions keep the
    /// arena engine bit-identical to the owned engine, hop for hop, on
    /// arbitrary random graphs.
    #[test]
    fn random_sparse_edits_and_compactions_keep_backends_identical(
        n in 4usize..24,
        extra in 0usize..30,
        seed in any::<u64>(),
        rounds in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnm_graph(n, (n - 1 + extra).min(n * (n - 1) / 2), 1.0..9.0, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let alg = LeListAlgorithm::new(Arc::clone(&ranks));

        let mut owned_states = initial_states(&alg, g.n());
        let mut owned_engine = MbfEngine::new(EngineStrategy::Frontier);
        owned_engine.mark_all_dirty(&g);
        let mut store = initial_store(&alg, g.n());
        let mut engine = ArenaEngine::new(EngineStrategy::Frontier);
        engine.mark_all_dirty(&g);

        let mut salt = seed | 1;
        for round in 0..rounds {
            // A few sparse external edits, applied to both backends.
            for e in 0..(1 + round % 3) {
                salt = salt
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((salt >> 33) as usize % g.n()) as NodeId;
                let edit = alg.init(((v as usize + e + 1) % g.n()) as NodeId);
                owned_states[v as usize] = edit.clone();
                owned_engine.mark_dirty(&g, [v]);
                store.assign(v, edit.entries(), |u| alg.entry_aux(u));
                engine.mark_dirty(&g, [v]);
            }
            // Interleave forced compactions: spans move, states must
            // not, and the subsequent hops must stay identical.
            if salt.is_multiple_of(2) {
                store.compact();
            }
            for _ in 0..=(salt % 3) as usize {
                let (_, c_owned) = owned_engine.step(&alg, &g, &mut owned_states, 1.0);
                let (_, c_arena) = engine.step(&alg, &g, &mut store, 1.0);
                prop_assert_eq!(c_owned, c_arena);
            }
            prop_assert_eq!(&store.export(), &owned_states);
        }
        // Drive both to the fixpoint and compare once more.
        for _ in 0..2 * g.n() + 4 {
            let (_, c_owned) = owned_engine.step(&alg, &g, &mut owned_states, 1.0);
            let (_, c_arena) = engine.step(&alg, &g, &mut store, 1.0);
            prop_assert_eq!(c_owned, c_arena);
            if !c_owned {
                break;
            }
        }
        prop_assert_eq!(store.export(), owned_states);
    }

    /// The representation-switching engine stays bit-identical to the
    /// owned engine, hop for hop, on arbitrary random graphs under
    /// arbitrary switching thresholds, with sparse external edits
    /// (`assign_dirty`) interleaved — shrinking edits on a grown run
    /// force dense→sparse reverts, and the run's own growth under
    /// aggressive thresholds forces sparse→dense flips mid-run.
    #[test]
    fn random_graphs_thresholds_and_edits_keep_switching_engine_identical(
        n in 4usize..24,
        extra in 0usize..30,
        seed in any::<u64>(),
        rounds in 1usize..6,
        row_density in 0.05f64..1.5,
        saturation in 0.05f64..1.5,
        revert in 0.0f64..0.6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnm_graph(n, (n - 1 + extra).min(n * (n - 1) / 2), 1.0..9.0, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let thresholds = SwitchThresholds { row_density, saturation, revert, budget_bytes: None };

        let mut owned_states = initial_states(&alg, g.n());
        let mut owned_engine = MbfEngine::new(EngineStrategy::default());
        owned_engine.mark_all_dirty(&g);
        let mut switching = SwitchingEngine::new(&alg, &g, EngineStrategy::default(), thresholds);

        let mut salt = seed | 1;
        let mut saw_matrix = false;
        for round in 0..rounds {
            // Sparse external edits applied to both backends: shrinking
            // a grown state collapses the live density (dense→sparse
            // pressure); the run regrows it afterwards (sparse→dense).
            for e in 0..(1 + round % 3) {
                salt = salt
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((salt >> 33) as usize % g.n()) as NodeId;
                let edit = alg.init(((v as usize + e + 1) % g.n()) as NodeId);
                owned_states[v as usize] = edit.clone();
                owned_engine.mark_dirty(&g, [v]);
                switching.assign_dirty(&alg, &g, v, &edit);
            }
            for _ in 0..=(salt % 3) as usize {
                let (_, c_owned) = owned_engine.step(&alg, &g, &mut owned_states, 1.0);
                let (_, c_switch) = switching.step(&alg, &g, 1.0);
                prop_assert_eq!(c_owned, c_switch);
                saw_matrix |= switching.in_matrix_mode();
            }
            prop_assert_eq!(&switching.export_states(), &owned_states);
        }
        // Drive both to the fixpoint and compare once more.
        for _ in 0..2 * g.n() + 4 {
            let (_, c_owned) = owned_engine.step(&alg, &g, &mut owned_states, 1.0);
            let (_, c_switch) = switching.step(&alg, &g, 1.0);
            prop_assert_eq!(c_owned, c_switch);
            saw_matrix |= switching.in_matrix_mode();
            if !c_owned {
                break;
            }
        }
        prop_assert_eq!(switching.export_states(), owned_states);
        // Aggressive thresholds must actually exercise matrix mode
        // (APSP states grow to full rows, so saturation is guaranteed).
        if row_density <= 0.5 && saturation <= 0.5 {
            prop_assert!(saw_matrix, "thresholds {thresholds:?} never flipped");
        }
    }
}
