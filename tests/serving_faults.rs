//! Fault sweep over the serving layer's injection sites (PR 9
//! acceptance): every wired (site, kind) × arrival index × thread count
//! yields **a typed [`ServeError`] or a correct answer** — zero panics
//! escape the oracle, zero exact-flagged answers are wrong, and every
//! ladder fall is recorded in the response. Plus the resilience
//! mechanics themselves: admission shedding under saturation and
//! cooperative batch cancellation.

use metric_tree_embedding::core::frt::{le_lists_direct, FrtTree, Ranks};
use metric_tree_embedding::faults::{self, FaultKind, FaultPlan, FaultSite};
use metric_tree_embedding::prelude::*;
use metric_tree_embedding::serving::{
    CancelToken, Oracle, OracleArtifact, ServeConfig, ServeDegradation, ServeError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes every test that touches the global fault registry.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the registry lock, silences the default panic hook (injected
/// panics are expected noise here), and guarantees `faults::clear()` +
/// hook restoration on drop — even when an assertion fails mid-sweep.
struct FaultGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl FaultGuard {
    fn acquire() -> FaultGuard {
        let lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faults::clear();
        std::panic::set_hook(Box::new(|_| {}));
        FaultGuard { _lock: lock }
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::clear();
        if !std::thread::panicking() {
            let _ = std::panic::take_hook();
        }
    }
}

/// Runs `f` on a dedicated pool of the given total parallelism.
fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build cannot fail")
        .install(f)
}

/// Large enough that the dense batch sweep crosses several cancellation
/// strides (the tree holds ≥ n level-0 leaves).
fn fixture_image() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0x5EF1);
    let g = gnm_graph(150, 430, 1.0..9.0, &mut rng);
    let ranks = std::sync::Arc::new(Ranks::sample(g.n(), &mut rng));
    let (lists, _, _) = le_lists_direct(&g, &ranks);
    let tree = FrtTree::from_le_lists(&lists, &ranks, 1.3, g.min_weight());
    OracleArtifact::from_parts(lists, Ranks::clone(&ranks), tree)
        .expect("fixture parts are valid")
        .encode()
}

/// One guarded serving workload: load the artifact, serve a pair twice
/// (second probe hits cache), then one small batch. Exercises all three
/// serve sites: `serve_artifact_read` on load, `serve_cache_entry` on
/// every probe, `serve_query_budget` on every charge.
fn serving_workload(image: &[u8]) -> Result<Vec<f64>, ServeError> {
    let oracle = Oracle::load(image, ServeConfig::default())?;
    let mut values = Vec::new();
    for _ in 0..2 {
        let answer = oracle.distance(3, 77)?;
        assert!(
            answer.exact,
            "default budget serves exact (degradations: {:?})",
            answer.degradations
        );
        let reference = oracle.artifact().tree().leaf_distance(3, 77);
        // A poisoned cache entry may add a recorded fall, but the value
        // an exact answer carries is non-negotiable.
        assert!(
            answer.value == reference,
            "exact answer {} != leaf distance {reference}",
            answer.value
        );
        values.push(answer.value);
    }
    let sources = [0u32, 9, 140];
    let batch = oracle.batch_distances(&sources, &CancelToken::new())?;
    for (i, &s) in sources.iter().enumerate() {
        for v in 0..oracle.artifact().n() as u32 {
            let reference = oracle.artifact().tree().leaf_distance(s, v);
            assert!(
                batch.distances[i][v as usize] == reference,
                "batch ({s},{v}) diverged"
            );
            values.push(batch.distances[i][v as usize]);
        }
    }
    Ok(values)
}

/// The tentpole sweep: every wired (site, kind) × arrival index ×
/// thread count ends in a typed error or answers bit-identical to the
/// clean baseline. The workload's internal asserts already enforce
/// "zero wrong exact answers"; the panic hook is a no-op, so any unwind
/// escaping the oracle fails the test as an un-absorbed panic.
#[test]
fn serve_faults_error_typed_or_answer_bit_identical() {
    let _guard = FaultGuard::acquire();
    let image = fixture_image();

    let mut baselines = Vec::new();
    for threads in [1usize, 4] {
        let image = &image;
        let clean = with_threads(threads, move || serving_workload(image))
            .unwrap_or_else(|e| panic!("clean serving workload failed: {e}"));
        baselines.push(clean);
    }
    assert_eq!(baselines[0], baselines[1], "clean thread divergence");

    let wired = [
        (FaultSite::ServeArtifactRead, FaultKind::Panic),
        (FaultSite::ServeArtifactRead, FaultKind::Io),
        (FaultSite::ServeCacheEntry, FaultKind::Panic),
        (FaultSite::ServeCacheEntry, FaultKind::PoisonNan),
        (FaultSite::ServeQueryBudget, FaultKind::Panic),
    ];
    for (site, kind) in wired {
        // nth 0 fires on the first arrival (always reached); a large nth
        // is never reached, exercising the armed-but-silent path.
        for nth in [0u64, 3, 1_000_000] {
            for (ti, threads) in [1usize, 4].into_iter().enumerate() {
                faults::install(FaultPlan::single(site, kind, nth));
                let image = &image;
                let outcome = with_threads(threads, move || serving_workload(image));
                faults::clear();
                match outcome {
                    Err(ServeError::InjectedFault { site: s, .. }) => {
                        assert_eq!(s, site, "typed error names the wrong site");
                    }
                    Err(ServeError::Artifact(_)) => {
                        // The absorbed serve_artifact_read io path.
                        assert_eq!(site, FaultSite::ServeArtifactRead);
                        assert_eq!(kind, FaultKind::Io);
                    }
                    Err(other) => panic!(
                        "{site}/{kind}/nth={nth}/t={threads}: unexpected error class {other:?}"
                    ),
                    Ok(values) => assert_eq!(
                        values, baselines[ti],
                        "{site}/{kind}/nth={nth}/t={threads}: Ok answers diverged"
                    ),
                }
            }
        }
    }
}

/// A poisoned cache entry is detected, evicted, recomputed — and the
/// whole episode is visible: the fall recorded on the answer, the
/// eviction counted in the cache stats, and the recomputed value exact.
#[test]
fn poisoned_cache_entry_degrades_to_a_correct_recompute() {
    let _guard = FaultGuard::acquire();
    let image = fixture_image();
    let oracle = Oracle::load(&image, ServeConfig::default()).expect("clean load");
    let reference = oracle.artifact().tree().leaf_distance(5, 99);

    let first = oracle.distance(5, 99).expect("warm the cache");
    assert!(first.value == reference);

    // Poison the next probe that finds an entry: the warmed pair.
    faults::install(FaultPlan::single(
        FaultSite::ServeCacheEntry,
        FaultKind::PoisonNan,
        0,
    ));
    let answer = oracle.distance(5, 99).expect("poison must be absorbed");
    faults::clear();
    assert!(
        answer
            .degradations
            .contains(&ServeDegradation::CachePoisonEvicted),
        "fall unrecorded: {:?}",
        answer.degradations
    );
    assert!(answer.exact, "recompute is exact");
    assert!(answer.value == reference, "recompute diverged");
    assert!(
        oracle.cache_stats().poison_evicted >= 1,
        "eviction uncounted"
    );
    // The evicted slot was re-warmed by the recompute: next probe hits.
    let again = oracle.distance(5, 99).expect("rewarmed");
    assert!(again.value == reference);
}

/// Admission control sheds typed once the bounded in-flight count is
/// reached — and capacity frees again when permits drop.
#[test]
fn saturation_sheds_typed_and_recovers() {
    let _guard = FaultGuard::acquire();
    let image = fixture_image();
    let config = ServeConfig {
        max_in_flight: 0,
        ..ServeConfig::default()
    };
    let oracle = Oracle::load(&image, config).expect("clean load");
    match oracle.distance(0, 1) {
        Err(ServeError::Overloaded {
            in_flight,
            capacity,
        }) => {
            assert_eq!(capacity, 0);
            assert!(in_flight >= capacity);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(oracle.in_flight(), 0, "shed arrival leaked a permit");

    // A real capacity admits again; queries drain the counter fully.
    let oracle = Oracle::load(&image, ServeConfig::default()).expect("clean load");
    for _ in 0..4 {
        oracle.distance(0, 1).expect("admitted");
    }
    assert_eq!(oracle.in_flight(), 0);
}

/// A cancelled token stops a batch sweep between row strides with a
/// typed error that reports the progress point deterministically.
#[test]
fn cancellation_stops_a_batch_sweep_typed() {
    let _guard = FaultGuard::acquire();
    let image = fixture_image();
    let oracle = Oracle::load(&image, ServeConfig::default()).expect("clean load");
    let sources: Vec<u32> = (0..16).collect();
    let token = CancelToken::new();
    token.cancel();
    match oracle.batch_distances(&sources, &token) {
        Err(ServeError::Cancelled { rows_done }) => {
            assert!(rows_done > 0, "progress point not reported");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The same oracle still serves: cancellation is cooperative, not
    // poisoning.
    let fresh = oracle
        .batch_distances(&sources, &CancelToken::new())
        .expect("post-cancel batch");
    assert_eq!(fresh.distances.len(), sources.len());
}

/// Deadline exhaustion is typed, carries the budget, and leaves the
/// oracle fully serviceable for the next query.
#[test]
fn exhausted_deadline_is_typed_and_transient() {
    let _guard = FaultGuard::acquire();
    let image = fixture_image();
    // Two units: the cache probe leaves one — below even the degraded
    // rung's floor.
    let config = ServeConfig {
        query_budget: 2,
        ..ServeConfig::default()
    };
    let oracle = Oracle::load(&image, config).expect("clean load");
    match oracle.distance(2, 3) {
        Err(ServeError::DeadlineExceeded { budget }) => assert_eq!(budget, 2),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let generous = Oracle::load(&image, ServeConfig::default()).expect("clean load");
    generous.distance(2, 3).expect("generous budget serves");
}
