//! Malformed-input coverage (PR 6 satellite): every corrupt `.gr`
//! document and every invalid edge list maps to the *right* typed error
//! — [`GraphParseError`] / [`GraphBuildError`] — and nothing in the
//! parsing or construction path panics, whatever the input.

use metric_tree_embedding::graph::io::{read_gr, GraphParseError};
use metric_tree_embedding::graph::{Graph, GraphBuildError};
use proptest::prelude::*;
use std::io::Read;

// ---------------------------------------------------------------------
// `.gr` corpus: one document per failure mode, asserting the exact
// typed error (including the 1-based line number where one is carried).
// ---------------------------------------------------------------------

#[test]
fn duplicate_header_is_rejected_with_its_line() {
    let doc = "c two headers\np sp 3 2\np sp 4 1\na 1 2 1.0\na 2 3 1.0\n";
    assert_eq!(
        read_gr(doc.as_bytes()).unwrap_err(),
        GraphParseError::DuplicateHeader(3)
    );
}

#[test]
fn header_missing_the_edge_count_is_rejected() {
    assert_eq!(
        read_gr("p sp 3\na 1 2 1.0\n".as_bytes()).unwrap_err(),
        GraphParseError::MissingHeader
    );
}

#[test]
fn header_with_garbled_vertex_count_is_rejected() {
    assert_eq!(
        read_gr("p sp three 2\n".as_bytes()).unwrap_err(),
        GraphParseError::MissingHeader
    );
}

#[test]
fn arc_before_the_header_is_rejected() {
    assert_eq!(
        read_gr("a 1 2 1.0\np sp 2 1\n".as_bytes()).unwrap_err(),
        GraphParseError::MissingHeader
    );
}

#[test]
fn truncated_arc_is_rejected_with_its_line() {
    assert_eq!(
        read_gr("p sp 3 2\na 1 2 1.0\na 2 3\n".as_bytes()).unwrap_err(),
        GraphParseError::BadArc(3)
    );
}

#[test]
fn garbled_weight_is_rejected_with_its_line() {
    assert_eq!(
        read_gr("p sp 2 1\na 1 2 heavy\n".as_bytes()).unwrap_err(),
        GraphParseError::BadArc(2)
    );
}

#[test]
fn zero_node_id_is_out_of_range() {
    // DIMACS ids are 1-based; 0 must not wrap around.
    assert_eq!(
        read_gr("p sp 2 1\na 0 2 1.0\n".as_bytes()).unwrap_err(),
        GraphParseError::NodeOutOfRange(2)
    );
}

#[test]
fn declared_edge_count_must_match_parsed_arcs() {
    // Fewer arcs than declared (a truncated file)...
    assert_eq!(
        read_gr("p sp 3 2\na 1 2 1.0\n".as_bytes()).unwrap_err(),
        GraphParseError::EdgeCountMismatch {
            declared: 2,
            parsed: 1
        }
    );
    // ...and more arcs than declared (a concatenation accident).
    assert_eq!(
        read_gr("p sp 3 1\na 1 2 1.0\na 2 3 1.0\n".as_bytes()).unwrap_err(),
        GraphParseError::EdgeCountMismatch {
            declared: 1,
            parsed: 2
        }
    );
}

#[test]
fn empty_document_is_a_missing_header() {
    assert_eq!(
        read_gr("".as_bytes()).unwrap_err(),
        GraphParseError::MissingHeader
    );
    assert_eq!(
        read_gr("c only comments\nc nothing else\n".as_bytes()).unwrap_err(),
        GraphParseError::MissingHeader
    );
}

#[test]
fn loop_arcs_and_bad_weights_are_invalid_graphs() {
    for doc in [
        "p sp 2 1\na 1 1 1.0\n",  // loop
        "p sp 2 1\na 1 2 -3.0\n", // negative weight
        "p sp 2 1\na 1 2 0\n",    // zero weight
        "p sp 2 1\na 1 2 NaN\n",  // NaN parses as f64, fails validation
        "p sp 2 1\na 1 2 inf\n",  // non-finite
    ] {
        assert!(
            matches!(
                read_gr(doc.as_bytes()),
                Err(GraphParseError::InvalidGraph(_))
            ),
            "{doc:?} must be InvalidGraph, got {:?}",
            read_gr(doc.as_bytes())
        );
    }
}

/// A reader that fails mid-stream: the error surfaces as the typed
/// `Io` variant carrying the underlying message.
struct FailingReader {
    served: usize,
}

impl Read for FailingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.served == 0 {
            let doc = b"p sp 2 1\n";
            buf[..doc.len()].copy_from_slice(doc);
            self.served = doc.len();
            Ok(doc.len())
        } else {
            Err(std::io::Error::other("disk on fire"))
        }
    }
}

#[test]
fn reader_failures_are_typed_io_errors() {
    match read_gr(FailingReader { served: 0 }) {
        Err(GraphParseError::Io(msg)) => assert!(msg.contains("disk on fire"), "{msg}"),
        other => panic!("expected Io, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Checked construction: `Graph::try_from_edges` reports the first
// violation in input order.
// ---------------------------------------------------------------------

#[test]
fn first_violation_in_input_order_wins() {
    // Edge 0 is fine, edge 1 has a bad weight, edge 2 is a loop: the
    // weight must be reported (input order, not severity order).
    let edges = vec![(0u32, 1u32, 1.0), (1, 2, f64::INFINITY), (3, 3, 1.0)];
    assert_eq!(
        Graph::try_from_edges(4, edges).unwrap_err(),
        GraphBuildError::BadWeight {
            index: 1,
            weight: f64::INFINITY
        }
    );
}

#[test]
fn out_of_range_endpoint_names_the_node_and_bound() {
    assert_eq!(
        Graph::try_from_edges(3, vec![(0u32, 7u32, 1.0)]).unwrap_err(),
        GraphBuildError::EndpointOutOfRange {
            index: 0,
            node: 7,
            n: 3
        }
    );
}

// ---------------------------------------------------------------------
// Property fuzz: arbitrary edge lists and mangled documents.
// ---------------------------------------------------------------------

/// An arbitrary (possibly invalid) edge for a graph on `n ≤ 12`
/// vertices: endpoints range past `n`, weights include zero, negatives,
/// and non-finite values.
fn any_edge() -> impl Strategy<Value = (u32, u32, f64)> {
    (
        0u32..16,
        0u32..16,
        prop_oneof![
            4 => 0.01f64..100.0,
            1 => Just(0.0),
            1 => -10.0f64..0.0,
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `try_from_edges` accepts exactly the lists with no violation,
    /// rejects all others with the right first-violation error, and
    /// never panics.
    #[test]
    fn try_from_edges_accepts_iff_no_violation(
        n in 1usize..12,
        edges in proptest::collection::vec(any_edge(), 0..20),
    ) {
        let expected = edges.iter().enumerate().find_map(|(index, &(u, v, w))| {
            if u == v {
                return Some(GraphBuildError::Loop { index, node: u });
            }
            if !(w > 0.0 && w.is_finite()) {
                return Some(GraphBuildError::BadWeight { index, weight: w });
            }
            if u as usize >= n {
                return Some(GraphBuildError::EndpointOutOfRange { index, node: u, n });
            }
            if v as usize >= n {
                return Some(GraphBuildError::EndpointOutOfRange { index, node: v, n });
            }
            None
        });
        match (Graph::try_from_edges(n, edges.clone()), expected) {
            (Ok(g), None) => {
                // Accepted lists build a coherent graph: duplicates
                // collapse, so m is bounded by the input length.
                prop_assert_eq!(g.n(), n);
                prop_assert!(g.m() <= edges.len());
            }
            (Err(got), Some(want)) => {
                // NaN breaks PartialEq on BadWeight; compare through
                // the Debug form, which prints NaN literally.
                prop_assert_eq!(format!("{got:?}"), format!("{want:?}"));
            }
            (got, want) => prop_assert!(false, "got {got:?}, wanted {want:?}"),
        }
    }

    /// No byte soup makes the parser panic; it always returns a typed
    /// result.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(words in proptest::collection::vec(0u32..256, 0..256)) {
        let bytes: Vec<u8> = words.into_iter().map(|w| w as u8).collect();
        let _ = read_gr(bytes.as_slice());
    }

    /// Structured mangling: a valid document with one line dropped,
    /// duplicated, or bit-flipped still parses to a typed result, and
    /// the *unmangled* document round-trips.
    #[test]
    fn parser_never_panics_on_mangled_documents(
        n in 2usize..8,
        mangle_line in 0usize..6,
        mode in 0u8..3,
    ) {
        let base = format!(
            "c base\np sp {n} {m}\n{arcs}",
            m = n - 1,
            arcs = (1..n).map(|i| format!("a {i} {} {}.5\n", i + 1, i)).collect::<String>(),
        );
        prop_assert!(read_gr(base.as_bytes()).is_ok());
        let lines: Vec<&str> = base.lines().collect();
        let idx = mangle_line % lines.len();
        let mangled: String = match mode {
            0 => lines
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != idx)
                .map(|(_, l)| format!("{l}\n"))
                .collect(),
            1 => lines
                .iter()
                .enumerate()
                .flat_map(|(i, l)| {
                    std::iter::repeat_n(format!("{l}\n"), if i == idx { 2 } else { 1 })
                })
                .collect(),
            _ => lines
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    if i == idx {
                        format!("{}\n", l.replace(char::is_numeric, "?"))
                    } else {
                        format!("{l}\n")
                    }
                })
                .collect(),
        };
        let _ = read_gr(mangled.as_bytes());
    }
}
