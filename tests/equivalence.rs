//! Randomized cross-validation: the paper's equivalences checked on
//! proptest-generated graphs (sizes kept small so shrinking stays fast).

use metric_tree_embedding::algebra::NodeId;
use metric_tree_embedding::core::catalog::SourceDetection;
use metric_tree_embedding::core::engine::run_to_fixpoint;
use metric_tree_embedding::core::frt::le_list::{
    le_lists_approx_eq, le_lists_direct, le_lists_oracle, Ranks,
};
use metric_tree_embedding::core::oracle::oracle_run_to_fixpoint;
use metric_tree_embedding::core::simgraph::SimulatedGraph;
use metric_tree_embedding::graph::algorithms::{apsp_by_squaring, shortest_path_diameter, sssp};
use metric_tree_embedding::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A small random connected graph described by (n, extra edges, seed).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..24, 0usize..30, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gnm_graph(n, n - 1 + extra, 1.0..10.0, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 5.2 on random graphs: oracle APSP ≡ explicit-H APSP.
    #[test]
    fn oracle_equals_explicit_h(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spd = shortest_path_diameter(&g) as usize;
        let sim = SimulatedGraph::without_hopset(&g, spd.max(1), 0.1, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let via_oracle = oracle_run_to_fixpoint(&alg, &sim, 4 * g.n());
        let h = sim.explicit_h();
        let via_h = run_to_fixpoint(&alg, &h, 4 * g.n());
        for v in 0..g.n() {
            prop_assert!(via_oracle.states[v].approx_eq(&via_h.states[v], 1e-9));
        }
    }

    /// Lemma 7.5 + Definition 7.3 on random graphs: oracle LE lists agree
    /// with direct LE lists on the explicit H.
    #[test]
    fn oracle_le_lists_equal_h_le_lists(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spd = shortest_path_diameter(&g) as usize;
        let sim = SimulatedGraph::without_hopset(&g, spd.max(1), 0.2, &mut rng);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (a, _, _) = le_lists_oracle(&sim, &ranks, Some(4 * g.n()));
        let (b, _, _) = le_lists_direct(&sim.explicit_h(), &ranks);
        prop_assert!(le_lists_approx_eq(&a, &b, 1e-9));
    }

    /// Section 1.1: matrix squaring and Dijkstra agree on all pairs.
    #[test]
    fn squaring_equals_dijkstra(g in arb_graph()) {
        let (sq, _) = apsp_by_squaring(&g);
        for u in 0..g.n() as NodeId {
            let sp = sssp(&g, u);
            for v in 0..g.n() {
                let (a, b) = (sq[u as usize][v].value(), sp.dist(v as NodeId).value());
                prop_assert!((a - b).abs() <= 1e-9 * a.max(b).max(1.0));
            }
        }
    }

    /// FRT dominance on random graphs, through the exact sampler.
    #[test]
    fn frt_dominance_random(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = metric_tree_embedding::core::frt::sample_direct(&g, &mut rng);
        for u in 0..g.n() as NodeId {
            let sp = sssp(&g, u);
            for v in 0..g.n() as NodeId {
                prop_assert!(s.tree.leaf_distance(u, v) >= sp.dist(v).value() - 1e-9);
            }
        }
    }

    /// Distributed (Khan) LE lists equal centralized ones on random
    /// graphs.
    #[test]
    fn khan_equals_centralized(g in arb_graph(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let (distributed, _) =
            metric_tree_embedding::congest::khan::khan_le_lists(&g, &ranks);
        let (central, _, _) = le_lists_direct(&g, &ranks);
        prop_assert!(le_lists_approx_eq(&distributed, &central, 1e-9));
    }
}
