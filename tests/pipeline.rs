//! Cross-crate integration tests: the full pipelines of the paper, run
//! end to end on small instances and validated against exact references.

use metric_tree_embedding::algebra::NodeId;
use metric_tree_embedding::apps::buyatbulk::{
    is_feasible, lower_bound, solve_buy_at_bulk, BuyAtBulkInstance, CableType, Demand,
};
use metric_tree_embedding::apps::kmedian::{kmedian_exhaustive, solve_kmedian};
use metric_tree_embedding::congest::khan::khan_frt;
use metric_tree_embedding::congest::skeleton::{skeleton_frt, SkeletonConfig};
use metric_tree_embedding::core::frt::paths::embed_all_tree_edges;
use metric_tree_embedding::core::metric::{approximate_metric, MetricConfig};
use metric_tree_embedding::graph::HopsetConfig;
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_hopset() -> HopsetConfig {
    HopsetConfig {
        d: 7,
        epsilon: 0.0,
        oversample: 3.0,
    }
}

/// G → hop set → H → oracle LE lists → FRT tree: dominance against exact
/// distances and sane structure.
#[test]
fn full_frt_pipeline_on_random_graph() {
    let mut rng = StdRng::seed_from_u64(201);
    let g = gnm_graph(48, 120, 1.0..15.0, &mut rng);
    let exact = apsp(&g);
    let config = FrtConfig {
        hopset: small_hopset(),
        eps_hat: 0.05,
        spanner_k: None,
        max_iterations: None,
    };
    let emb = FrtEmbedding::sample(&g, &config, &mut rng);
    let tree = emb.tree();
    for u in 0..g.n() as NodeId {
        assert_eq!(tree.nodes()[tree.leaf(u)].level, 0);
        for v in 0..g.n() as NodeId {
            let dt = emb.distance(u, v);
            let dg = exact[u as usize][v as usize].value();
            assert!(dt >= dg - 1e-9, "dominance violated at ({u},{v})");
        }
    }
    // LE lists are short.
    let max_le = emb.le_lists().iter().map(|l| l.len()).max().unwrap();
    assert!(max_le <= 6 * (g.n() as f64).ln().ceil() as usize);
}

/// Tree edges map back to real G-paths within the Section 7.5 bound —
/// through the full (hop set + oracle) pipeline.
#[test]
fn pipeline_tree_edges_embed_back() {
    let mut rng = StdRng::seed_from_u64(202);
    let g = gnm_graph(40, 100, 1.0..8.0, &mut rng);
    let config = FrtConfig {
        hopset: small_hopset(),
        eps_hat: 0.05,
        spanner_k: None,
        max_iterations: None,
    };
    let emb = FrtEmbedding::sample(&g, &config, &mut rng);
    for edge in embed_all_tree_edges(&g, emb.tree()) {
        let tree_weight = emb.tree().nodes()[edge.child].parent_weight;
        assert!(edge.weight <= 3.0 * tree_weight + 1e-9);
        for hop in edge.path.windows(2) {
            assert!(g.weight(hop[0], hop[1]).is_some() || hop[0] == hop[1]);
        }
    }
}

/// Theorem 6.1 through the whole stack, including the hop set.
#[test]
fn approximate_metric_pipeline() {
    let mut rng = StdRng::seed_from_u64(203);
    let g = gnm_graph(40, 100, 1.0..10.0, &mut rng);
    let exact = apsp(&g);
    let cfg = MetricConfig {
        hopset: small_hopset(),
        eps_hat: 0.03,
        max_iterations: None,
    };
    let metric = approximate_metric(&g, &cfg, &mut rng);
    for u in 0..g.n() {
        for v in 0..g.n() {
            let a = exact[u][v].value();
            let b = metric.dist(u as NodeId, v as NodeId).value();
            assert!(b >= a - 1e-9);
            if a > 0.0 {
                assert!(b / a <= 1.6, "ratio {} at ({u},{v})", b / a);
            }
        }
    }
}

/// The expected stretch across several pipeline samples is O(log n) with
/// a small constant on a 2D grid.
#[test]
fn pipeline_expected_stretch_grid() {
    let mut rng = StdRng::seed_from_u64(204);
    let g = grid_graph(6, 8, 1.0..4.0, &mut rng);
    let exact = apsp(&g);
    let config = FrtConfig {
        hopset: small_hopset(),
        eps_hat: 0.05,
        spanner_k: None,
        max_iterations: None,
    };
    let trees = 10;
    let mut acc = vec![vec![0.0f64; g.n()]; g.n()];
    for t in 0..trees {
        let mut r = StdRng::seed_from_u64(2000 + t);
        let emb = FrtEmbedding::sample(&g, &config, &mut r);
        for u in 0..g.n() {
            for v in (u + 1)..g.n() {
                acc[u][v] += emb.distance(u as NodeId, v as NodeId);
            }
        }
    }
    let mut worst: f64 = 0.0;
    for u in 0..g.n() {
        for v in (u + 1)..g.n() {
            worst = worst.max(acc[u][v] / trees as f64 / exact[u][v].value());
        }
    }
    // O(log n) with a generous constant (single-digit trials).
    assert!(
        worst <= 10.0 * (g.n() as f64).log2(),
        "max expected stretch {worst}"
    );
}

/// The distributed pipelines agree with the guarantees: Khan's tree and
/// the skeleton tree both dominate; the whole thing runs end to end.
#[test]
fn congest_pipelines_run_end_to_end() {
    let mut rng = StdRng::seed_from_u64(205);
    let g = gnm_graph(36, 90, 1.0..6.0, &mut rng);
    let exact = apsp(&g);

    let (khan_tree, _, khan_cost) = khan_frt(&g, &mut rng);
    assert!(khan_cost.rounds > 0);
    let skel = skeleton_frt(&g, &SkeletonConfig::default(), &mut rng);
    for u in 0..g.n() as NodeId {
        for v in 0..g.n() as NodeId {
            let dg = exact[u as usize][v as usize].value();
            assert!(khan_tree.leaf_distance(u, v) >= dg - 1e-9);
            assert!(skel.tree.leaf_distance(u, v) >= dg - 1e-9);
        }
    }
}

/// k-median through the full stack stays within a small factor of the
/// exhaustive optimum.
#[test]
fn kmedian_end_to_end_quality() {
    let mut rng = StdRng::seed_from_u64(206);
    let g = grid_graph(4, 5, 1.0..3.0, &mut rng);
    let opt = kmedian_exhaustive(&g, 3);
    let sol = solve_kmedian(
        &g,
        &KMedianConfig {
            k: 3,
            oversample: 4.0,
            trees: 6,
        },
        &mut rng,
    );
    assert!(sol.centers.len() <= 3);
    assert!(
        sol.cost <= 3.0 * opt.cost + 1e-9,
        "{} vs opt {}",
        sol.cost,
        opt.cost
    );
}

/// Buy-at-bulk through the full stack: feasible, above the lower bound,
/// within the expected O(log n) factor.
#[test]
fn buyatbulk_end_to_end_quality() {
    let mut rng = StdRng::seed_from_u64(207);
    let g = grid_graph(5, 5, 2.0..10.0, &mut rng);
    let inst = BuyAtBulkInstance {
        cables: vec![
            CableType {
                capacity: 1.0,
                cost: 1.0,
            },
            CableType {
                capacity: 8.0,
                cost: 3.0,
            },
        ],
        demands: vec![
            Demand {
                s: 0,
                t: 24,
                amount: 2.0,
            },
            Demand {
                s: 4,
                t: 20,
                amount: 5.0,
            },
            Demand {
                s: 2,
                t: 22,
                amount: 1.0,
            },
        ],
    };
    let sol = solve_buy_at_bulk(&g, &inst, &mut rng);
    assert!(is_feasible(&inst, &sol));
    let lb = lower_bound(&g, &inst);
    assert!(sol.total_cost >= lb - 1e-9);
    assert!(sol.total_cost <= 20.0 * (g.n() as f64).log2() * lb);
}

/// Determinism: the same seed yields the same embedding.
#[test]
fn sampling_is_deterministic_given_seed() {
    let g = gnm_graph(30, 80, 1.0..9.0, &mut StdRng::seed_from_u64(208));
    let config = FrtConfig {
        hopset: small_hopset(),
        eps_hat: 0.05,
        spanner_k: None,
        max_iterations: None,
    };
    let a = FrtEmbedding::sample(&g, &config, &mut StdRng::seed_from_u64(209));
    let b = FrtEmbedding::sample(&g, &config, &mut StdRng::seed_from_u64(209));
    assert_eq!(a.beta(), b.beta());
    for u in 0..g.n() as NodeId {
        for v in 0..g.n() as NodeId {
            assert_eq!(a.distance(u, v), b.distance(u, v));
        }
    }
}

/// Section 6's closing remark: combining Theorem 6.2's O(1)-approximate
/// metric with the Blelloch et al. metric-input FRT sampler yields a tree
/// of the same asymptotic expected stretch.
#[test]
fn frt_from_approximate_metric_composes() {
    use metric_tree_embedding::core::frt::sample_from_metric;
    use metric_tree_embedding::core::metric::approximate_metric_with_spanner;

    let mut rng = StdRng::seed_from_u64(210);
    let g = gnm_graph(40, 160, 1.0..8.0, &mut rng);
    let exact = apsp(&g);
    let cfg = MetricConfig {
        hopset: small_hopset(),
        eps_hat: 0.03,
        max_iterations: None,
    };
    let metric = approximate_metric_with_spanner(&g, 2, &cfg, &mut rng);
    let sample = sample_from_metric(metric.matrix(), g.min_weight(), &mut rng);
    for u in 0..g.n() as NodeId {
        for v in 0..g.n() as NodeId {
            // Dominance survives the composition: tree ≥ approx metric ≥ exact.
            assert!(
                sample.tree.leaf_distance(u, v) >= exact[u as usize][v as usize].value() - 1e-9
            );
        }
    }
}
