//! Corrupted-snapshot corpus (PR 8 satellite): every damaged snapshot —
//! bit flips, truncations, mangled magic/version fields, hand-crafted
//! payloads, arbitrary byte soup — maps to the *right* typed
//! [`SnapshotError`] on load, and nothing in the decode path panics,
//! whatever the input. Companion to `tests/malformed_inputs.rs`, which
//! makes the same promise for the `.gr` parser.

use metric_tree_embedding::core::checkpoint::Checkpoint;
use metric_tree_embedding::core::frt::{le_lists_direct, FrtTree, Ranks};
use metric_tree_embedding::persist::{
    SectionTag, SnapshotError, SnapshotReader, SnapshotWriter, MAGIC, VERSION,
};
use metric_tree_embedding::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A representative snapshot exercising every section codec: distance
/// maps, an epoch store with a live rank column, LE lists, ranks, an
/// FRT tree, and a mid-run checkpoint.
fn sample_image() -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0x5_CAFE);
    let g = gnm_graph(20, 50, 1.0..6.0, &mut rng);
    let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
    let (lists, _, _) = le_lists_direct(&g, &ranks);
    let tree = FrtTree::from_le_lists(&lists, &ranks, 1.5, 1.0);
    let alg = metric_tree_embedding::core::frt::LeListAlgorithm::new(Arc::clone(&ranks));
    let store = metric_tree_embedding::core::arena::initial_store(&alg, g.n());
    let states: Vec<DistanceMap> = (0..g.n() as NodeId)
        .map(|v| {
            DistanceMap::from_entries(vec![
                (v, Dist::new(0.0)),
                ((v + 1) % g.n() as NodeId, Dist::new(1.5)),
            ])
        })
        .collect();
    SnapshotWriter::new()
        .put_distance_maps(&states)
        .put_store(&store)
        .put_le_lists(&lists)
        .put_ranks(&ranks)
        .put_frt_tree(&tree)
        .put_checkpoint(&Checkpoint {
            hop: 3,
            frontier: vec![0, 2, 5],
            states,
        })
        .encode()
}

/// Decodes every section of a reader, returning the first typed error
/// (or `None` if the whole snapshot is sound).
fn decode_everything(bytes: &[u8]) -> Result<(), SnapshotError> {
    let reader = SnapshotReader::decode(bytes)?;
    reader.distance_maps()?;
    reader.store().map(|s| s.restore())?;
    reader.le_lists()?;
    reader.ranks()?;
    reader.frt_tree()?;
    reader.checkpoint()?;
    Ok(())
}

#[test]
fn the_sample_snapshot_is_sound() {
    decode_everything(&sample_image()).expect("uncorrupted snapshot must decode");
}

// ---------------------------------------------------------------------
// One corruption per failure mode, asserting the exact typed error.
// ---------------------------------------------------------------------

#[test]
fn zeroed_magic_is_bad_magic() {
    let mut image = sample_image();
    image[..8].fill(0);
    assert_eq!(
        SnapshotReader::decode(&image).unwrap_err(),
        SnapshotError::BadMagic
    );
}

#[test]
fn wrong_generation_magic_is_bad_magic() {
    let mut image = sample_image();
    image[7] = b'2'; // "MTESNAP2"
    assert_eq!(
        SnapshotReader::decode(&image).unwrap_err(),
        SnapshotError::BadMagic
    );
}

#[test]
fn future_version_is_refused_with_the_found_version() {
    let mut image = sample_image();
    image[8..12].copy_from_slice(&(VERSION + 7).to_le_bytes());
    assert_eq!(
        SnapshotReader::decode(&image).unwrap_err(),
        SnapshotError::UnsupportedVersion { found: VERSION + 7 }
    );
}

#[test]
fn header_truncation_is_typed() {
    let image = sample_image();
    for len in 8..20.min(image.len()) {
        assert_eq!(
            SnapshotReader::decode(&image[..len]).unwrap_err(),
            SnapshotError::Truncated { context: "header" },
            "prefix length {len}"
        );
    }
    // Shorter than the magic itself: indistinguishable from a non-snapshot.
    for len in 0..8 {
        assert_eq!(
            SnapshotReader::decode(&image[..len]).unwrap_err(),
            SnapshotError::BadMagic,
            "prefix length {len}"
        );
    }
}

#[test]
fn every_single_bit_flip_is_caught_typed() {
    let image = sample_image();
    // Flipping any single bit anywhere must yield a typed error — the
    // file CRC catches body flips, the header fields catch their own.
    // (Every 8th bit keeps the corpus fast while still touching every
    // byte.)
    for bit in (0..image.len() * 8).step_by(8) {
        let mut mangled = image.clone();
        mangled[bit / 8] ^= 1 << (bit % 8);
        assert!(
            SnapshotReader::decode(&mangled).is_err(),
            "bit flip at {bit} decoded cleanly"
        );
    }
}

#[test]
fn every_truncation_point_is_caught_typed() {
    let image = sample_image();
    for len in 0..image.len() {
        let result = SnapshotReader::decode(&image[..len]);
        assert!(result.is_err(), "truncation to {len} bytes decoded cleanly");
    }
}

#[test]
fn body_corruption_names_the_file_checksum() {
    let mut image = sample_image();
    let mid = image.len() / 2;
    image[mid] ^= 0xFF;
    assert_eq!(
        SnapshotReader::decode(&image).unwrap_err(),
        SnapshotError::CrcMismatch { section: 0 }
    );
}

#[test]
fn missing_sections_are_malformed_not_panics() {
    let image = SnapshotWriter::new().encode();
    let reader = SnapshotReader::decode(&image).expect("empty snapshot is legal");
    assert!(matches!(
        reader.distance_maps().unwrap_err(),
        SnapshotError::Malformed(_)
    ));
    assert!(matches!(
        reader.checkpoint().unwrap_err(),
        SnapshotError::Malformed(_)
    ));
    assert!(matches!(
        reader.frt_tree().unwrap_err(),
        SnapshotError::Malformed(_)
    ));
}

// ---------------------------------------------------------------------
// Semantically invalid payloads behind valid checksums: the structural
// validators, not the CRCs, must catch these.
// ---------------------------------------------------------------------

/// Builds a single-section container with correct CRCs around an
/// arbitrary payload, so decode reaches the section codec.
fn container(tag: u32, payload: &[u8]) -> Vec<u8> {
    fn crc32(bytes: &[u8]) -> u32 {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
        }
        crc ^ 0xFFFF_FFFF
    }
    let mut body = Vec::new();
    body.extend_from_slice(&tag.to_le_bytes());
    body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    body.extend_from_slice(&crc32(payload).to_le_bytes());
    body.extend_from_slice(payload);
    let mut image = Vec::new();
    image.extend_from_slice(&MAGIC);
    image.extend_from_slice(&VERSION.to_le_bytes());
    image.extend_from_slice(&1u32.to_le_bytes());
    image.extend_from_slice(&crc32(&body).to_le_bytes());
    image.extend_from_slice(&body);
    image
}

#[test]
fn nan_negative_and_infinite_distances_are_malformed() {
    for bad in [f64::NAN, -1.0, f64::INFINITY] {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes()); // one map
        payload.extend_from_slice(&1u64.to_le_bytes()); // one entry
        payload.extend_from_slice(&0u32.to_le_bytes()); // node 0
        payload.extend_from_slice(&bad.to_bits().to_le_bytes());
        let image = container(SectionTag::DistanceMaps as u32, &payload);
        let err = SnapshotReader::decode(&image)
            .expect("container is checksummed")
            .distance_maps()
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Malformed(_)), "{bad}: {err:?}");
    }
}

#[test]
fn unsorted_distance_entries_are_malformed() {
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&2u64.to_le_bytes());
    for node in [5u32, 2] {
        payload.extend_from_slice(&node.to_le_bytes());
        payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
    }
    let image = container(SectionTag::DistanceMaps as u32, &payload);
    assert!(matches!(
        SnapshotReader::decode(&image).unwrap().distance_maps(),
        Err(SnapshotError::Malformed(_))
    ));
}

#[test]
fn giant_length_prefixes_are_truncation_not_allocation() {
    // A u64::MAX count must fail fast as Truncated, not attempt a
    // multi-exabyte Vec::with_capacity.
    let payload = u64::MAX.to_le_bytes().to_vec();
    let image = container(SectionTag::DistanceMaps as u32, &payload);
    assert!(matches!(
        SnapshotReader::decode(&image).unwrap().distance_maps(),
        Err(SnapshotError::Truncated { .. })
    ));
}

#[test]
fn non_permutation_rank_orders_are_malformed() {
    for order in [vec![0u32, 0], vec![0, 7], vec![1, 2]] {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(order.len() as u64).to_le_bytes());
        for v in &order {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let image = container(SectionTag::Ranks as u32, &payload);
        assert!(
            matches!(
                SnapshotReader::decode(&image).unwrap().ranks(),
                Err(SnapshotError::Malformed(_))
            ),
            "order {order:?} accepted"
        );
    }
}

#[test]
fn structurally_broken_frt_trees_are_malformed() {
    // β outside [1, 2): everything else well-formed is irrelevant — the
    // validated constructor rejects before any traversal can run.
    let mut payload = Vec::new();
    payload.extend_from_slice(&5.0f64.to_bits().to_le_bytes()); // β = 5
    payload.extend_from_slice(&0u64.to_le_bytes()); // no radii
    payload.extend_from_slice(&0u64.to_le_bytes()); // no nodes
    payload.extend_from_slice(&0u64.to_le_bytes()); // no leaves
    let image = container(SectionTag::FrtTree as u32, &payload);
    assert!(matches!(
        SnapshotReader::decode(&image).unwrap().frt_tree(),
        Err(SnapshotError::Malformed(_))
    ));
}

#[test]
fn unknown_and_duplicate_section_tags_are_malformed() {
    let image = container(99, &[]);
    assert!(matches!(
        SnapshotReader::decode(&image),
        Err(SnapshotError::Malformed(_))
    ));
}

// ---------------------------------------------------------------------
// Property fuzz: arbitrary bytes and structured mangling.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No byte soup panics the decoder; it always returns a typed
    /// result.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..255, 0..512),
    ) {
        let _ = decode_everything(&bytes);
    }

    /// Arbitrary bytes stamped with a valid magic+version prefix reach
    /// the section machinery and still never panic.
    #[test]
    fn decoder_never_panics_on_magic_prefixed_soup(
        bytes in proptest::collection::vec(0u8..255, 0..512),
    ) {
        let mut image = MAGIC.to_vec();
        image.extend_from_slice(&VERSION.to_le_bytes());
        image.extend_from_slice(&bytes);
        let _ = decode_everything(&image);
    }

    /// A sound snapshot with a random slice of bytes overwritten still
    /// decodes to a typed result — and if it somehow decodes cleanly,
    /// the overwrite must have been a no-op.
    #[test]
    fn overwritten_snapshots_never_panic(
        offset in 0usize..4096,
        val in 0u8..255,
        len in 1usize..64,
    ) {
        let image = sample_image();
        let offset = offset % image.len();
        let end = (offset + len).min(image.len());
        let mut mangled = image.clone();
        mangled[offset..end].fill(val);
        if decode_everything(&mangled).is_ok() {
            prop_assert_eq!(mangled, image);
        }
    }
}
