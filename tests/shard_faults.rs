//! Fault-injection sweep for the sharded engine (PR 10 tentpole).
//!
//! Contract, extending `fault_harness.rs` to the shard sites: every
//! injected shard fault — a panic or state poisoning inside a shard's
//! hop execution, or a dropped / duplicated / reordered / bit-flipped
//! exchange message — either
//!
//! * surfaces as a typed [`RunError`] (fail-fast driver), or
//! * is absorbed by the [`ShardSupervisor`]: the failed hop is
//!   re-executed from its hop-entry state (recorded as
//!   [`Degradation::ShardReExecuted`]), repeat offenders are
//!   quarantined with a sibling takeover
//!   ([`Degradation::ShardQuarantined`]), and the final output is
//!   **bit-identical** to the clean run's.
//!
//! No third outcome — silent corruption, torn mirrors, a wedged pool —
//! is acceptable, for every site × kind × arrival index × shard count
//! × thread count below.

use metric_tree_embedding::core::catalog::SourceDetection;
use metric_tree_embedding::core::shard::{
    try_run_sharded_to_fixpoint_with, ShardPolicy, ShardSupervisor,
};
use metric_tree_embedding::core::{Degradation, RunError};
use metric_tree_embedding::faults::{self, FaultKind, FaultPlan, FaultSite};
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes every test that touches the global fault registry.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the registry lock, silences the default panic hook (injected
/// panics are expected noise here), and guarantees `faults::clear()` +
/// hook restoration on drop — even when an assertion fails mid-sweep.
struct FaultGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl FaultGuard {
    fn acquire() -> FaultGuard {
        let lock = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faults::clear();
        std::panic::set_hook(Box::new(|_| {}));
        FaultGuard { _lock: lock }
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faults::clear();
        if !std::thread::panicking() {
            let _ = std::panic::take_hook();
        }
    }
}

/// Runs `f` on a dedicated pool of the given total parallelism.
fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build cannot fail")
        .install(f)
}

fn fixture_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(0xFA10);
    gnm_graph(96, 260, 1.0..9.0, &mut rng)
}

/// The (site, kind) pairs wired into the sharded hop loop. Exchange
/// tampering only exists where an exchange exists, so those pairs are
/// swept at `k > 1` only (asserted below).
fn wired_faults() -> Vec<(FaultSite, FaultKind)> {
    vec![
        (FaultSite::ShardHopExec, FaultKind::Panic),
        (FaultSite::ShardHopExec, FaultKind::PoisonNan),
        (FaultSite::ShardExchangeSend, FaultKind::DropMsg),
        (FaultSite::ShardExchangeSend, FaultKind::DupMsg),
        (FaultSite::ShardExchangeSend, FaultKind::ReorderMsg),
        (FaultSite::ShardExchangeSend, FaultKind::CorruptMsg),
        (FaultSite::ShardExchangeRecv, FaultKind::DropMsg),
        (FaultSite::ShardExchangeRecv, FaultKind::DupMsg),
        (FaultSite::ShardExchangeRecv, FaultKind::ReorderMsg),
        (FaultSite::ShardExchangeRecv, FaultKind::CorruptMsg),
    ]
}

type CleanRun = (Vec<DistanceMap>, usize, bool);

fn clean_baseline(g: &Graph, k: usize, threads: usize) -> CleanRun {
    let alg = SourceDetection::k_ssp(g.n(), 4);
    with_threads(threads, || {
        let (run, report) = try_run_sharded_to_fixpoint_with(&alg, g, g.n() + 1, k)
            .unwrap_or_else(|e| panic!("clean k={k}/t={threads} run failed: {e}"));
        assert!(report.degradations.is_empty());
        (run.states, run.iterations, run.fixpoint)
    })
}

/// The fail-fast sweep: site × kind × arrival × shard count × thread
/// count either errors with the expected typed class or finishes bit
/// for bit identical to the clean run (the armed-but-never-reached
/// arrivals exercise the latter).
#[test]
fn fail_fast_faults_error_typed_or_leave_output_bit_identical() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);

    for k in [2usize, 4] {
        let mut baselines = Vec::new();
        for threads in [1usize, 4] {
            baselines.push(clean_baseline(&g, k, threads));
        }
        assert_eq!(baselines[0], baselines[1], "k={k}: clean thread divergence");

        for (site, kind) in wired_faults() {
            for nth in [0u64, 3, 1_000_000] {
                for (ti, threads) in [1usize, 4].into_iter().enumerate() {
                    faults::install(FaultPlan::single(site, kind, nth));
                    let (g, alg) = (&g, &alg);
                    let outcome = with_threads(threads, move || {
                        try_run_sharded_to_fixpoint_with(alg, g, g.n() + 1, k)
                    });
                    faults::clear();
                    match outcome {
                        Err(RunError::InjectedFault { .. })
                        | Err(RunError::Panicked { .. })
                        | Err(RunError::CorruptState { .. })
                        | Err(RunError::ShardExchangeCorrupt { .. }) => {}
                        Err(other) => panic!(
                            "{site}/{kind}/nth={nth}/k={k}/t={threads}: \
                             unexpected error class {other:?}"
                        ),
                        Ok((run, _)) => assert_eq!(
                            (run.states, run.iterations, run.fixpoint),
                            baselines[ti],
                            "{site}/{kind}/nth={nth}/k={k}/t={threads}: \
                             Ok run diverged from clean baseline"
                        ),
                    }
                }
            }
        }
    }
}

/// The supervised sweep: every survivable arrival (one-shot plans are
/// exhausted by the first re-execution) ends `Ok` and bit-identical,
/// with the re-execution recorded iff the fault actually fired.
#[test]
fn supervisor_absorbs_every_one_shot_fault_bit_identically() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let supervisor = ShardSupervisor::new(ShardPolicy::default());

    for k in [2usize, 4] {
        let mut baselines = Vec::new();
        for threads in [1usize, 4] {
            baselines.push(clean_baseline(&g, k, threads));
        }

        for (site, kind) in wired_faults() {
            for nth in [0u64, 3, 1_000_000] {
                for (ti, threads) in [1usize, 4].into_iter().enumerate() {
                    faults::install(FaultPlan::single(site, kind, nth));
                    let (g, alg, supervisor) = (&g, &alg, &supervisor);
                    let outcome = with_threads(threads, move || {
                        supervisor.run_to_fixpoint_with(alg, g, g.n() + 1, k)
                    });
                    faults::clear();
                    let (run, report) = outcome.unwrap_or_else(|e| {
                        panic!(
                            "{site}/{kind}/nth={nth}/k={k}/t={threads}: \
                             supervisor failed a survivable one-shot fault: {e}"
                        )
                    });
                    assert_eq!(
                        (run.states, run.iterations, run.fixpoint),
                        baselines[ti],
                        "{site}/{kind}/nth={nth}/k={k}/t={threads}: supervised run diverged"
                    );
                    let reexecuted = report
                        .degradations
                        .iter()
                        .any(|d| matches!(d, Degradation::ShardReExecuted { .. }));
                    if nth == 1_000_000 {
                        // Armed but never reached: nothing to absorb.
                        assert!(
                            report.degradations.is_empty(),
                            "{site}/{kind}/k={k}/t={threads}: phantom degradation: {report:?}"
                        );
                    } else if kind != FaultKind::ReorderMsg {
                        // Reordering a message with fewer than two
                        // entries is a semantic no-op (the tampered
                        // message is byte-identical), so only the other
                        // kinds guarantee a detectable failure on every
                        // arrival: panics/poison via the hop audit,
                        // drop/dup via the channel barrier, corruption
                        // via the sealed digest.
                        assert!(
                            reexecuted,
                            "{site}/{kind}/nth={nth}/k={k}/t={threads}: \
                             fault fired but no re-execution recorded: {report:?}"
                        );
                    }
                }
            }
        }
    }
}

/// Re-execution is deterministic: the same plan against the same input
/// twice yields identical states, reports, and exchange digests.
#[test]
fn re_execution_is_deterministic() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let supervisor = ShardSupervisor::new(ShardPolicy::default());

    let mut outcomes = Vec::new();
    for _ in 0..2 {
        faults::install(FaultPlan::single(
            FaultSite::ShardExchangeSend,
            FaultKind::CorruptMsg,
            2,
        ));
        let out = supervisor
            .run_to_fixpoint_with(&alg, &g, g.n() + 1, 4)
            .expect("supervised run");
        faults::clear();
        outcomes.push(out);
    }
    let (a, ra) = &outcomes[0];
    let (b, rb) = &outcomes[1];
    assert_eq!(a.states, b.states);
    assert_eq!(a.hop_digests, b.hop_digests);
    assert_eq!(
        format!("{:?}", ra.degradations),
        format!("{:?}", rb.degradations),
        "recovery path must replay identically"
    );
}

/// Quarantine takeover: a zero-retry policy turns the first failure
/// into a quarantine of the attributed culprit; the sibling takes the
/// dead shard's ranges over and the run still ends bit-identical.
#[test]
fn quarantine_takes_over_and_stays_bit_identical() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let clean = clean_baseline(&g, 4, 1);
    let supervisor = ShardSupervisor::new(ShardPolicy {
        max_hop_retries: 0,
        allow_quarantine: true,
    });

    // A hop-execution panic is attributed to the panicking shard; a
    // corrupt exchange to the sending channel's shard. Both must name
    // a culprit, so a zero-retry budget quarantines immediately.
    for (site, kind) in [
        (FaultSite::ShardHopExec, FaultKind::Panic),
        (FaultSite::ShardExchangeSend, FaultKind::CorruptMsg),
    ] {
        faults::install(FaultPlan::single(site, kind, 0));
        let out = supervisor.run_to_fixpoint_with(&alg, &g, g.n() + 1, 4);
        faults::clear();
        let (run, report) = out.unwrap_or_else(|e| panic!("{site}/{kind}: takeover failed: {e}"));
        assert_eq!(
            (run.states, run.iterations, run.fixpoint),
            clean,
            "{site}/{kind}: post-quarantine run diverged"
        );
        let quarantined = report.degradations.iter().find_map(|d| match d {
            Degradation::ShardQuarantined {
                shard,
                taken_over_by,
                ..
            } => Some((*shard, *taken_over_by)),
            _ => None,
        });
        let (shard, sibling) =
            quarantined.unwrap_or_else(|| panic!("{site}/{kind}: no quarantine in {report:?}"));
        assert_ne!(shard, sibling, "a shard cannot take itself over");
    }
}

/// With quarantine disallowed and the budget exhausted by a persistent
/// fault, the supervisor fails typed — `RetriesExhausted`, never a
/// panic or a silently wrong answer.
#[test]
fn persistent_fault_exhausts_retries_with_a_typed_error() {
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let supervisor = ShardSupervisor::new(ShardPolicy {
        max_hop_retries: 1,
        allow_quarantine: false,
    });
    // Fires on every arrival: re-execution cannot outrun it.
    faults::install(
        FaultPlan::parse("shard_exchange_send:corrupt_msg:0:1000000").expect("valid plan"),
    );
    let out = supervisor.run_to_fixpoint_with(&alg, &g, g.n() + 1, 4);
    faults::clear();
    match out {
        Err(RunError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 2, "one retry = two attempts");
            assert!(
                matches!(*last, RunError::ShardExchangeCorrupt { .. }),
                "wrong terminal cause: {last:?}"
            );
        }
        other => panic!("expected RetriesExhausted, got {:?}", other.map(|_| ())),
    }
}

/// The CI pre-armed entry point: when `MTE_FAULT_PLAN` is set in the
/// environment, run the supervised engine under it at shard counts
/// {2, 4} and require the absorb-or-typed-error contract to hold.
/// Without the variable this is a no-op (the sweeps above cover the
/// in-process plans).
#[test]
fn pre_armed_env_plan_is_absorbed_or_typed() {
    let Some(plan) = FaultPlan::from_env() else {
        return;
    };
    let _guard = FaultGuard::acquire();
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let supervisor = ShardSupervisor::new(ShardPolicy::default());

    for k in [2usize, 4] {
        let clean = clean_baseline(&g, k, 1);
        faults::install(plan.clone());
        let out = supervisor.run_to_fixpoint_with(&alg, &g, g.n() + 1, k);
        faults::clear();
        match out {
            Ok((run, _)) => assert_eq!(
                (run.states, run.iterations, run.fixpoint),
                clean,
                "k={k}: pre-armed supervised run diverged"
            ),
            Err(
                RunError::InjectedFault { .. }
                | RunError::Panicked { .. }
                | RunError::CorruptState { .. }
                | RunError::ShardExchangeCorrupt { .. }
                | RunError::RetriesExhausted { .. },
            ) => {}
            Err(other) => panic!("k={k}: unexpected error class {other:?}"),
        }
    }
}
