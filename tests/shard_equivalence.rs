//! Differential equivalence suite for the sharded engine (PR 10
//! tentpole).
//!
//! Sharding is an execution strategy, not a semantics change: for
//! every workload, shard count in {1, 2, 4, 8}, and thread count in
//! {1, 4}, the sharded run must be **bit-identical** to the unsharded
//! reference engine — states, iteration count, and fixpoint flag —
//! and the per-hop exchange digests must be a pure function of the
//! input: stable across shard-local thread counts and across reruns.
//! Exchange accounting rides along: a single shard exchanges nothing,
//! and any `k > 1` cut of a connected graph must cross it.

use metric_tree_embedding::core::catalog::SourceDetection;
use metric_tree_embedding::core::engine::{run_to_fixpoint, EngineStrategy, MbfAlgorithm};
use metric_tree_embedding::core::frt::le_list::le_lists_direct_with;
use metric_tree_embedding::core::frt::{LeList, LeListAlgorithm, Ranks};
use metric_tree_embedding::core::shard::try_run_sharded_to_fixpoint_with;
use metric_tree_embedding::graph::algorithms::sssp;
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREADS: [usize; 2] = [1, 4];

/// Runs `f` on a dedicated pool of the given total parallelism.
fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build cannot fail")
        .install(f)
}

/// The shared sweep body: unsharded reference once, then every shard
/// count × thread count must reproduce it bit for bit, with digests
/// agreeing across threads and across a rerun.
fn assert_sharded_matches<A: MbfAlgorithm>(label: &str, alg: &A, g: &Graph) {
    let cap = g.n() + 1;
    let reference = run_to_fixpoint(alg, g, cap);

    for k in SHARD_COUNTS {
        let mut digests_per_thread = Vec::new();
        for threads in THREADS {
            let (run, report) =
                with_threads(threads, || try_run_sharded_to_fixpoint_with(alg, g, cap, k))
                    .unwrap_or_else(|e| panic!("{label}/k={k}/t={threads}: clean run failed: {e}"));
            assert_eq!(
                run.states, reference.states,
                "{label}/k={k}/t={threads}: states diverged from unsharded engine"
            );
            assert_eq!(
                run.iterations, reference.iterations,
                "{label}/k={k}/t={threads}"
            );
            assert_eq!(
                run.fixpoint, reference.fixpoint,
                "{label}/k={k}/t={threads}"
            );
            assert!(
                report.degradations.is_empty(),
                "{label}/k={k}/t={threads}: clean run degraded: {report:?}"
            );
            // One digest per committed hop, including the confirming one.
            assert_eq!(run.hop_digests.len(), run.iterations);
            if k == 1 {
                assert_eq!(run.work.shard_msgs, 0, "{label}: single shard exchanged");
                assert_eq!(run.work.shard_msg_bytes, 0);
            } else {
                assert!(
                    run.work.shard_msgs > 0,
                    "{label}/k={k}: a connected graph's cut carried no messages"
                );
                assert!(run.work.shard_msg_bytes > 0);
            }
            digests_per_thread.push(run.hop_digests);
        }
        assert_eq!(
            digests_per_thread[0], digests_per_thread[1],
            "{label}/k={k}: exchange digests vary with thread count"
        );
        // Rerun at one thread: digests are reproducible, not merely
        // consistent within one process-global pool configuration.
        let (rerun, _) = with_threads(1, || try_run_sharded_to_fixpoint_with(alg, g, cap, k))
            .unwrap_or_else(|e| panic!("{label}/k={k}: rerun failed: {e}"));
        assert_eq!(
            rerun.hop_digests, digests_per_thread[0],
            "{label}/k={k}: rerun digests diverged"
        );
    }
}

/// SSSP on a random sparse graph — the single-source workload, large
/// enough that per-shard recomputes split into multiple worker chunks.
#[test]
fn sssp_sharded_matches_unsharded_across_shard_counts_and_threads() {
    let mut rng = StdRng::seed_from_u64(0xEA01);
    let g = gnm_graph(150, 430, 1.0..9.0, &mut rng);
    let alg = SourceDetection::sssp(g.n(), 0);
    assert_sharded_matches("sssp/gnm", &alg, &g);

    // Semantic anchor, not just differential: the sharded SSSP states
    // must agree with Dijkstra on the same graph.
    let (run, _) = try_run_sharded_to_fixpoint_with(&alg, &g, g.n() + 1, 4).expect("sharded sssp");
    let truth = sssp(&g, 0);
    for v in 0..g.n() {
        assert_eq!(
            run.states[v].get(0),
            truth.dist(v as NodeId),
            "sharded SSSP disagrees with Dijkstra at v={v}"
        );
    }
}

/// k-SSP on a grid — structured topology where contiguous vertex
/// ranges cut through every row, maximizing cross-shard halo traffic.
#[test]
fn k_ssp_on_grid_sharded_matches_unsharded() {
    let mut rng = StdRng::seed_from_u64(0xEA02);
    let g = grid_graph(10, 12, 1.0..5.0, &mut rng);
    let alg = SourceDetection::k_ssp(g.n(), 4);
    assert_sharded_matches("k_ssp/grid", &alg, &g);
}

/// APSP on a small random graph — dense states, every vertex a source.
#[test]
fn apsp_sharded_matches_unsharded() {
    let mut rng = StdRng::seed_from_u64(0xEA03);
    let g = gnm_graph(48, 110, 1.0..9.0, &mut rng);
    let alg = SourceDetection::apsp(g.n());
    assert_sharded_matches("apsp/gnm", &alg, &g);
}

/// The FRT backbone: LE lists computed by the sharded engine must
/// reproduce the direct-iteration baseline (`le_lists_direct_with`,
/// itself differential-tested against the owned engine) exactly —
/// same filtered states, same list conversion, same iteration count.
/// This is the workload whose filter is rank-dependent, so it would
/// expose any shard-boundary effect on filter inputs.
#[test]
fn le_lists_sharded_reproduce_the_direct_baseline() {
    let mut rng = StdRng::seed_from_u64(0xEA04);
    let g = gnm_graph(90, 240, 1.0..9.0, &mut rng);
    let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
    let alg = LeListAlgorithm::new(Arc::clone(&ranks));
    assert_sharded_matches("le_lists/gnm", &alg, &g);

    let (baseline, base_iters, _) = le_lists_direct_with(&g, &ranks, EngineStrategy::default());
    for k in SHARD_COUNTS {
        let (run, _) =
            try_run_sharded_to_fixpoint_with(&alg, &g, g.n() + 1, k).expect("sharded LE lists");
        let lists: Vec<LeList> = run
            .states
            .iter()
            .map(|x| LeList::from_distance_map(x, &ranks))
            .collect();
        assert_eq!(lists, baseline, "k={k}: LE lists diverged from baseline");
        assert_eq!(
            run.iterations, base_iters,
            "k={k}: iteration count diverged"
        );
    }
}
