//! Corrupted-artifact corpus for the serving layer (PR 9 satellite):
//! every damaged oracle artifact — truncations, bit flips, sections
//! that pass every CRC but disagree with each other, arbitrary byte
//! soup — maps to a typed [`ServeError`] on load, and nothing in the
//! load path panics, whatever the input. Companion to
//! `tests/snapshot_corpus.rs`, which makes the byte-level promise for
//! the snapshot container this artifact rides in; this suite owns the
//! *cross-section* (semantic) layer on top.

use metric_tree_embedding::core::frt::{le_lists_direct, FrtNode, FrtTree, LeList, Ranks};
use metric_tree_embedding::persist::{SnapshotError, SnapshotWriter};
use metric_tree_embedding::prelude::*;
use metric_tree_embedding::serving::{OracleArtifact, ServeError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn sample_parts() -> (Vec<LeList>, Ranks, FrtTree) {
    let mut rng = StdRng::seed_from_u64(0x5E21);
    let g = gnm_graph(28, 70, 1.0..7.0, &mut rng);
    let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
    let (lists, _, _) = le_lists_direct(&g, &ranks);
    let tree = FrtTree::from_le_lists(&lists, &ranks, 1.3, g.min_weight());
    (lists, Ranks::clone(&ranks), tree)
}

fn sample_image() -> Vec<u8> {
    let (lists, ranks, tree) = sample_parts();
    OracleArtifact::from_parts(lists, ranks, tree)
        .expect("sample parts are valid")
        .encode()
}

/// Encodes raw (possibly skewed) parts *without* artifact validation,
/// so the image reaches `OracleArtifact::decode` with every CRC
/// correct and only the cross-section validators left to object.
fn raw_image(lists: &[LeList], ranks: &Ranks, tree: &FrtTree) -> Vec<u8> {
    SnapshotWriter::new()
        .put_le_lists(lists)
        .put_ranks(ranks)
        .put_frt_tree(tree)
        .encode()
}

#[test]
fn the_sample_artifact_is_sound() {
    OracleArtifact::decode(&sample_image()).expect("uncorrupted artifact must load");
}

// ---------------------------------------------------------------------
// Byte-level damage: the snapshot container catches it, and the serving
// layer forwards the typed error instead of panicking.
// ---------------------------------------------------------------------

#[test]
fn every_truncation_point_is_a_typed_error() {
    let image = sample_image();
    for len in 0..image.len() {
        match OracleArtifact::decode(&image[..len]) {
            Err(ServeError::Artifact(_)) => {}
            Err(other) => panic!("truncation to {len}: wrong error class {other:?}"),
            Ok(_) => panic!("truncation to {len} bytes loaded cleanly"),
        }
    }
}

#[test]
fn every_sampled_bit_flip_is_a_typed_error() {
    let image = sample_image();
    // Every 8th bit touches every byte while keeping the corpus fast;
    // the container CRCs catch body flips, the header fields their own.
    for bit in (0..image.len() * 8).step_by(8) {
        let mut mangled = image.clone();
        mangled[bit / 8] ^= 1 << (bit % 8);
        match OracleArtifact::decode(&mangled) {
            Err(ServeError::Artifact(_)) => {}
            Err(other) => panic!("bit flip at {bit}: wrong error class {other:?}"),
            Ok(_) => panic!("bit flip at {bit} loaded cleanly"),
        }
    }
}

#[test]
fn missing_sections_are_typed_not_panics() {
    let (lists, ranks, tree) = sample_parts();
    // Each single-section image is CRC-sound but incomplete.
    let images = [
        SnapshotWriter::new().put_le_lists(&lists).encode(),
        SnapshotWriter::new().put_ranks(&ranks).encode(),
        SnapshotWriter::new().put_frt_tree(&tree).encode(),
        SnapshotWriter::new().encode(),
    ];
    for (i, image) in images.iter().enumerate() {
        assert!(
            matches!(
                OracleArtifact::decode(image),
                Err(ServeError::Artifact(SnapshotError::Malformed(_)))
            ),
            "incomplete image {i} did not fail typed"
        );
    }
}

// ---------------------------------------------------------------------
// CRC-correct but structurally invalid: sections that decode fine in
// isolation yet cannot serve queries. Only the artifact's cross-section
// validation stands between these and a panic mid-query.
// ---------------------------------------------------------------------

#[test]
fn length_skew_between_sections_is_malformed() {
    let (mut lists, ranks, tree) = sample_parts();
    lists.pop();
    assert!(matches!(
        OracleArtifact::decode(&raw_image(&lists, &ranks, &tree)),
        Err(ServeError::Malformed { .. })
    ));
}

#[test]
fn ranks_from_a_different_run_are_malformed() {
    let (lists, _, tree) = sample_parts();
    // A different permutation of the same size: sizes agree everywhere,
    // but the lists' strictly-decreasing-rank invariant breaks.
    let n = lists.len();
    let foreign = Ranks::sample(n, &mut StdRng::seed_from_u64(0xD15A));
    assert!(matches!(
        OracleArtifact::decode(&raw_image(&lists, &foreign, &tree)),
        Err(ServeError::Malformed { .. })
    ));
}

#[test]
fn a_list_that_drops_its_tail_is_malformed() {
    let (mut lists, ranks, tree) = sample_parts();
    // Remove the global minimum-rank tail from one list: the degraded
    // rung's O(1) floor would silently disappear.
    let victim = lists
        .iter()
        .position(|l| l.len() > 1)
        .expect("some list has more than one entry");
    let mut entries = lists[victim].entries().to_vec();
    entries.pop();
    lists[victim] = LeList::from_entries_sorted(entries);
    assert!(matches!(
        OracleArtifact::decode(&raw_image(&lists, &ranks, &tree)),
        Err(ServeError::Malformed { .. })
    ));
}

#[test]
fn a_list_that_loses_its_owner_is_malformed() {
    let (mut lists, ranks, tree) = sample_parts();
    let victim = lists
        .iter()
        .position(|l| l.len() > 1)
        .expect("some list has more than one entry");
    let entries = lists[victim].entries()[1..].to_vec();
    lists[victim] = LeList::from_entries_sorted(entries);
    assert!(matches!(
        OracleArtifact::decode(&raw_image(&lists, &ranks, &tree)),
        Err(ServeError::Malformed { .. })
    ));
}

#[test]
fn tree_weights_off_the_radius_ladder_are_malformed() {
    let (lists, ranks, tree) = sample_parts();
    // Perturb one non-root parent weight: still finite and positive, so
    // the tree-shape validator accepts it — only the artifact's
    // radius-ladder check can notice, and it must, because the batch
    // sweep's climb table assumes the ladder.
    let mut nodes: Vec<FrtNode> = tree.nodes().to_vec();
    let victim = (1..nodes.len())
        .find(|&i| nodes[i].parent_weight > 0.0)
        .expect("a non-root node exists");
    nodes[victim].parent_weight *= 1.5;
    let skewed = FrtTree::from_parts(
        nodes,
        (0..ranks.n()).map(|v| tree.leaf(v as u32)).collect(),
        tree.radii().to_vec(),
        tree.beta(),
    )
    .expect("shape-valid tree");
    assert!(matches!(
        OracleArtifact::decode(&raw_image(&lists, &ranks, &skewed)),
        Err(ServeError::Malformed { .. })
    ));
}

#[test]
fn a_tree_for_a_different_vertex_count_is_malformed() {
    let (lists, ranks, _) = sample_parts();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let g = gnm_graph(12, 30, 1.0..4.0, &mut rng);
    let small_ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
    let (small_lists, _, _) = le_lists_direct(&g, &small_ranks);
    let small_tree = FrtTree::from_le_lists(&small_lists, &small_ranks, 1.3, g.min_weight());
    assert!(matches!(
        OracleArtifact::decode(&raw_image(&lists, &ranks, &small_tree)),
        Err(ServeError::Malformed { .. })
    ));
}

// ---------------------------------------------------------------------
// Property fuzz: arbitrary bytes, and arbitrary overwrites of a sound
// image, never panic the loader.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn loader_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..255, 0..512),
    ) {
        let _ = OracleArtifact::decode(&bytes);
    }

    /// A sound artifact with a random slice overwritten still loads to
    /// a typed result — and if it loads cleanly, the overwrite must
    /// have been a no-op.
    #[test]
    fn overwritten_artifacts_never_panic(
        offset in 0usize..8192,
        val in 0u8..255,
        len in 1usize..64,
    ) {
        let image = sample_image();
        let offset = offset % image.len();
        let end = (offset + len).min(image.len());
        let mut mangled = image.clone();
        mangled[offset..end].fill(val);
        if OracleArtifact::decode(&mangled).is_ok() {
            prop_assert_eq!(mangled, image);
        }
    }
}
