//! Failure-injection and boundary tests across the workspace: degenerate
//! graphs, extreme parameters, and the documented panics.

use metric_tree_embedding::algebra::{Dist, NodeId};
use metric_tree_embedding::apps::buyatbulk::{
    solve_buy_at_bulk, BuyAtBulkInstance, CableType, Demand,
};
use metric_tree_embedding::apps::kmedian::{kmedian_cost, solve_kmedian};
use metric_tree_embedding::core::catalog::SourceDetection;
use metric_tree_embedding::core::engine::run_to_fixpoint;
use metric_tree_embedding::core::frt::{sample_direct, sample_from_metric};
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn two_node_graph_embeds() {
    let g = Graph::from_edges(2, vec![(0, 1, 3.5)]);
    let mut rng = StdRng::seed_from_u64(301);
    let s = sample_direct(&g, &mut rng);
    let d = s.tree.leaf_distance(0, 1);
    assert!(d >= 3.5 - 1e-9);
    assert_eq!(s.tree.leaf_distance(0, 0), 0.0);
}

#[test]
fn uniform_weights_embed() {
    let g = cycle_graph(16, 1.0);
    let mut rng = StdRng::seed_from_u64(302);
    let s = sample_direct(&g, &mut rng);
    for u in 0..16 {
        for v in 0..16 {
            let hops = (u as i32 - v as i32)
                .unsigned_abs()
                .min(16 - (u as i32 - v as i32).unsigned_abs());
            assert!(s.tree.leaf_distance(u, v) >= hops as f64 - 1e-9);
        }
    }
}

#[test]
fn extreme_weight_ratio_embeds() {
    // ω_max/ω_min = 10⁶ (still "polynomially bounded" for n = 32), with
    // the heavy edge as a bridge so distances actually span the ratio:
    // the radii ladder gets ~20 levels deeper.
    let mut rng = StdRng::seed_from_u64(303);
    let mut edges: Vec<(NodeId, NodeId, f64)> = (0..30u32).map(|i| (i, i + 1, 1.0)).collect();
    edges.push((0, 31, 1e6));
    let g = Graph::from_edges(32, edges);
    let s = sample_direct(&g, &mut rng);
    assert!(s.tree.num_levels() >= 20);
    let exact = sssp(&g, 0);
    for v in 0..32 {
        assert!(s.tree.leaf_distance(0, v) >= exact.dist(v).value() - 1e-6);
    }
}

#[test]
#[should_panic(expected = "connected")]
fn disconnected_graph_is_rejected_by_frt() {
    let g = Graph::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
    let mut rng = StdRng::seed_from_u64(304);
    let _ = sample_direct(&g, &mut rng);
}

#[test]
fn metric_with_infinite_entries_builds_lists() {
    // le_lists_from_metric tolerates ∞ (it simply drops those pairs);
    // tree construction is only attempted on connected metrics.
    let dist = vec![
        vec![Dist::ZERO, Dist::new(1.0)],
        vec![Dist::new(1.0), Dist::ZERO],
    ];
    let mut rng = StdRng::seed_from_u64(305);
    let s = sample_from_metric(&dist, 1.0, &mut rng);
    assert!(s.tree.leaf_distance(0, 1) >= 1.0 - 1e-9);
}

#[test]
fn kmedian_k_one_and_k_n() {
    let g = path_graph(7, 2.0);
    let mut rng = StdRng::seed_from_u64(306);
    let sol1 = solve_kmedian(&g, &KMedianConfig::new(1), &mut rng);
    assert_eq!(sol1.centers.len(), 1);
    // k = 1 optimum on a path is the midpoint.
    assert!(sol1.cost <= kmedian_cost(&g, &[0]) + 1e-9);
    let sol_n = solve_kmedian(&g, &KMedianConfig::new(7), &mut rng);
    assert_eq!(sol_n.cost, 0.0);
}

#[test]
fn buyatbulk_single_cable_type() {
    let g = path_graph(5, 1.0);
    let inst = BuyAtBulkInstance {
        cables: vec![CableType {
            capacity: 2.0,
            cost: 1.0,
        }],
        demands: vec![Demand {
            s: 0,
            t: 4,
            amount: 3.0,
        }],
    };
    let mut rng = StdRng::seed_from_u64(308);
    let sol = solve_buy_at_bulk(&g, &inst, &mut rng);
    // Flow 3 needs 2 copies of the capacity-2 cable wherever it goes.
    assert!(sol.edges.iter().all(|&(_, _, _, _, mult)| mult == 2));
    assert!(sol.total_cost >= 4.0 * 2.0 - 1e-9); // ≥ shortest path · 2 copies
}

#[test]
fn source_detection_with_empty_source_set() {
    let g = path_graph(4, 1.0);
    let alg = SourceDetection::new(g.n(), &[], 3, Dist::INF);
    let res = run_to_fixpoint(&alg, &g, g.n() + 1);
    assert!(res.fixpoint);
    assert!(res.states.iter().all(|x| x.is_empty()));
}

#[test]
fn zero_capacity_demands_are_noops() {
    let g = path_graph(4, 1.0);
    let inst = BuyAtBulkInstance {
        cables: vec![CableType {
            capacity: 1.0,
            cost: 1.0,
        }],
        demands: vec![Demand {
            s: 0,
            t: 3,
            amount: 0.0,
        }],
    };
    let mut rng = StdRng::seed_from_u64(308);
    let sol = solve_buy_at_bulk(&g, &inst, &mut rng);
    assert_eq!(sol.total_cost, 0.0);
}

#[test]
fn star_graph_small_spd_fast_fixpoint() {
    let mut rng = StdRng::seed_from_u64(309);
    let g = star_graph(64, 1.0..5.0, &mut rng);
    let alg = SourceDetection::apsp(g.n());
    let res = run_to_fixpoint(&alg, &g, g.n() + 1);
    // SPD(star) = 2 ⇒ fixpoint after ≤ 3 iterations.
    assert!(res.iterations <= 3, "took {}", res.iterations);
}
