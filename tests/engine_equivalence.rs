//! Differential tests for the engine strategies: the frontier-driven
//! sparse engine must be **bit-identical** to the dense reference sweep
//! on every workload — the skip criterion ("no input of `v` changed, so
//! `x_v` cannot change") is exact, not approximate — while doing
//! strictly less relaxation work whenever convergence leaves vertices
//! quiescent before the run ends.

use metric_tree_embedding::algebra::NodeId;
use metric_tree_embedding::core::catalog::{Connectivity, SourceDetection, WidestPaths};
use metric_tree_embedding::core::engine::{
    run_to_fixpoint_with, run_with, EngineStrategy, MbfAlgorithm, MbfRun,
};
use metric_tree_embedding::core::frt::le_list::{LeListAlgorithm, Ranks};
use metric_tree_embedding::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Strategies under differential test, dense reference first.
const STRATEGIES: [EngineStrategy; 4] = [
    EngineStrategy::Dense,
    EngineStrategy::Frontier,
    EngineStrategy::Hybrid {
        dense_threshold: 0.25,
    },
    EngineStrategy::Hybrid {
        dense_threshold: 0.75,
    },
];

/// Runs `alg` to the fixpoint under every strategy and asserts exact
/// state equality (plus identical iteration counts) against the dense
/// reference. Returns (dense work, frontier work) for work assertions.
fn assert_all_strategies_agree<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
) -> (
    MbfRun<<A as MbfAlgorithm>::M>,
    MbfRun<<A as MbfAlgorithm>::M>,
)
where
    A: MbfAlgorithm,
    A::M: PartialEq + std::fmt::Debug,
{
    let dense = run_to_fixpoint_with(alg, g, cap, EngineStrategy::Dense);
    let mut frontier_run = None;
    for strategy in STRATEGIES {
        let run = run_to_fixpoint_with(alg, g, cap, strategy);
        assert_eq!(
            run.states, dense.states,
            "strategy {strategy:?} diverged from the dense engine"
        );
        assert_eq!(
            run.iterations, dense.iterations,
            "iteration count under {strategy:?}"
        );
        assert_eq!(
            run.fixpoint, dense.fixpoint,
            "fixpoint flag under {strategy:?}"
        );
        if strategy == EngineStrategy::Frontier {
            frontier_run = Some(run);
        }
    }
    (
        dense,
        frontier_run.expect("frontier strategy is in STRATEGIES"),
    )
}

/// The workload families named by the engine issue: sparse random
/// graphs, grids, and disconnected graphs.
fn workload_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xEF11);
    let mut disconnected: Vec<(NodeId, NodeId, f64)> =
        gnm_graph(20, 40, 1.0..8.0, &mut rng).edges().collect();
    // A second component, offset by 20, plus two isolated vertices.
    disconnected.extend(
        gnm_graph(14, 25, 1.0..8.0, &mut rng)
            .edges()
            .map(|(u, v, w)| (u + 20, v + 20, w)),
    );
    vec![
        ("gnm sparse", gnm_graph(60, 140, 1.0..10.0, &mut rng)),
        ("grid 8x8", grid_graph(8, 8, 1.0..5.0, &mut rng)),
        ("path", path_graph(48, 1.0)),
        ("disconnected", Graph::from_edges(36, disconnected)),
    ]
}

#[test]
fn sssp_strategies_bit_identical_on_workloads() {
    for (name, g) in workload_graphs() {
        let alg = SourceDetection::sssp(g.n(), 0);
        let (dense, frontier) = assert_all_strategies_agree(&alg, &g, g.n() + 1);
        // Convergent instances must see strictly fewer relaxations.
        assert!(
            frontier.work.edge_relaxations < dense.work.edge_relaxations,
            "{name}: frontier {} !< dense {}",
            frontier.work.edge_relaxations,
            dense.work.edge_relaxations
        );
    }
}

#[test]
fn apsp_restricted_strategies_bit_identical_on_workloads() {
    for (name, g) in workload_graphs() {
        // k-SSP: APSP restricted to the 4 closest sources per node.
        let alg = SourceDetection::k_ssp(g.n(), 4);
        let (dense, frontier) = assert_all_strategies_agree(&alg, &g, g.n() + 1);
        assert!(
            frontier.work.edge_relaxations < dense.work.edge_relaxations,
            "{name}: frontier {} !< dense {}",
            frontier.work.edge_relaxations,
            dense.work.edge_relaxations
        );
    }
}

#[test]
fn le_list_strategies_bit_identical_on_workloads() {
    let mut rng = StdRng::seed_from_u64(0xEF12);
    for (name, g) in workload_graphs() {
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let alg = LeListAlgorithm::new(ranks);
        let (dense, frontier) = assert_all_strategies_agree(&alg, &g, g.n() + 1);
        assert!(
            frontier.work.edge_relaxations < dense.work.edge_relaxations,
            "{name}: frontier {} !< dense {}",
            frontier.work.edge_relaxations,
            dense.work.edge_relaxations
        );
    }
}

#[test]
fn widest_paths_and_connectivity_strategies_agree() {
    // Non-min-plus semirings exercise the generic pull-recompute path.
    for (_, g) in workload_graphs() {
        assert_all_strategies_agree(&WidestPaths::apwp(g.n()), &g, g.n() + 1);
        assert_all_strategies_agree(&Connectivity::all_pairs(g.n()), &g, g.n() + 1);
    }
}

#[test]
fn fixed_iteration_runs_agree_before_convergence() {
    // run_with (exact h hops, no fixpoint shortcut for the result) must
    // also match hop for hop, including h far beyond convergence.
    let g = grid_graph(6, 6, 1.0..4.0, &mut StdRng::seed_from_u64(0xEF13));
    let alg = SourceDetection::apsp(g.n());
    for h in [0, 1, 2, 5, 40] {
        let dense = run_with(&alg, &g, h, EngineStrategy::Dense);
        for strategy in STRATEGIES {
            let run = run_with(&alg, &g, h, strategy);
            assert_eq!(run.states, dense.states, "h = {h}, strategy {strategy:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random-graph differential fuzz: SSSP, 3-SSP, and LE lists under
    /// all strategies on arbitrary (possibly disconnected) graphs.
    #[test]
    fn random_graphs_all_strategies_agree(
        n in 2usize..28,
        extra in 0usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Two independent components (the second offset past the first)
        // keep the disconnected case — the degenerate one worth fuzzing —
        // in every batch.
        let n2 = 1 + n / 3;
        let mut edges: Vec<(NodeId, NodeId, f64)> =
            gnm_graph(n, (n - 1 + extra).min(n * (n - 1) / 2), 1.0..9.0, &mut rng)
                .edges()
                .collect();
        if n2 >= 2 {
            edges.extend(
                gnm_graph(n2, n2 - 1, 1.0..9.0, &mut rng)
                    .edges()
                    .map(|(u, v, w)| (u + n as NodeId, v + n as NodeId, w)),
            );
        }
        let g = Graph::from_edges(n + n2, edges);
        let cap = g.n() + 1;

        let sssp = SourceDetection::sssp(g.n(), (seed % n as u64) as NodeId);
        assert_all_strategies_agree(&sssp, &g, cap);

        let kssp = SourceDetection::k_ssp(g.n(), 3);
        assert_all_strategies_agree(&kssp, &g, cap);

        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        assert_all_strategies_agree(&LeListAlgorithm::new(ranks), &g, cap);
    }

    /// The frontier engine's relaxation count never exceeds the dense
    /// engine's, on any random graph.
    #[test]
    fn frontier_work_never_exceeds_dense(
        n in 2usize..24,
        extra in 0usize..30,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnm_graph(n, (n - 1 + extra).min(n * (n - 1) / 2), 1.0..9.0, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let dense = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Dense);
        let frontier = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        prop_assert!(frontier.work.edge_relaxations <= dense.work.edge_relaxations);
        prop_assert!(frontier.work.touched_vertices <= dense.work.touched_vertices);
    }
}
