//! Differential tests for the engine strategies: the frontier-driven
//! sparse engine must be **bit-identical** to the dense reference sweep
//! on every workload — the skip criterion ("no input of `v` changed, so
//! `x_v` cannot change") is exact, not approximate — while doing
//! strictly less relaxation work whenever convergence leaves vertices
//! quiescent before the run ends.

use metric_tree_embedding::algebra::NodeId;
use metric_tree_embedding::core::catalog::{Connectivity, SourceDetection, WidestPaths};
use metric_tree_embedding::core::engine::{
    run_to_fixpoint_with, run_with, EngineStrategy, MbfAlgorithm, MbfRun,
};
use metric_tree_embedding::core::frt::le_list::{LeListAlgorithm, Ranks};
use metric_tree_embedding::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Strategies under differential test, dense reference first.
const STRATEGIES: [EngineStrategy; 4] = [
    EngineStrategy::Dense,
    EngineStrategy::Frontier,
    EngineStrategy::Hybrid {
        dense_threshold: 0.25,
    },
    EngineStrategy::Hybrid {
        dense_threshold: 0.75,
    },
];

/// Runs `alg` to the fixpoint under every strategy and asserts exact
/// state equality (plus identical iteration counts) against the dense
/// reference. Returns (dense work, frontier work) for work assertions.
fn assert_all_strategies_agree<A>(
    alg: &A,
    g: &Graph,
    cap: usize,
) -> (
    MbfRun<<A as MbfAlgorithm>::M>,
    MbfRun<<A as MbfAlgorithm>::M>,
)
where
    A: MbfAlgorithm,
    A::M: PartialEq + std::fmt::Debug,
{
    let dense = run_to_fixpoint_with(alg, g, cap, EngineStrategy::Dense);
    let mut frontier_run = None;
    for strategy in STRATEGIES {
        let run = run_to_fixpoint_with(alg, g, cap, strategy);
        assert_eq!(
            run.states, dense.states,
            "strategy {strategy:?} diverged from the dense engine"
        );
        assert_eq!(
            run.iterations, dense.iterations,
            "iteration count under {strategy:?}"
        );
        assert_eq!(
            run.fixpoint, dense.fixpoint,
            "fixpoint flag under {strategy:?}"
        );
        if strategy == EngineStrategy::Frontier {
            frontier_run = Some(run);
        }
    }
    (
        dense,
        frontier_run.expect("frontier strategy is in STRATEGIES"),
    )
}

/// The workload families named by the engine issue: sparse random
/// graphs, grids, and disconnected graphs.
fn workload_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(0xEF11);
    let mut disconnected: Vec<(NodeId, NodeId, f64)> =
        gnm_graph(20, 40, 1.0..8.0, &mut rng).edges().collect();
    // A second component, offset by 20, plus two isolated vertices.
    disconnected.extend(
        gnm_graph(14, 25, 1.0..8.0, &mut rng)
            .edges()
            .map(|(u, v, w)| (u + 20, v + 20, w)),
    );
    vec![
        ("gnm sparse", gnm_graph(60, 140, 1.0..10.0, &mut rng)),
        ("grid 8x8", grid_graph(8, 8, 1.0..5.0, &mut rng)),
        ("path", path_graph(48, 1.0)),
        ("disconnected", Graph::from_edges(36, disconnected)),
    ]
}

#[test]
fn sssp_strategies_bit_identical_on_workloads() {
    for (name, g) in workload_graphs() {
        let alg = SourceDetection::sssp(g.n(), 0);
        let (dense, frontier) = assert_all_strategies_agree(&alg, &g, g.n() + 1);
        // Convergent instances must see strictly fewer relaxations.
        assert!(
            frontier.work.edge_relaxations < dense.work.edge_relaxations,
            "{name}: frontier {} !< dense {}",
            frontier.work.edge_relaxations,
            dense.work.edge_relaxations
        );
    }
}

#[test]
fn apsp_restricted_strategies_bit_identical_on_workloads() {
    for (name, g) in workload_graphs() {
        // k-SSP: APSP restricted to the 4 closest sources per node.
        let alg = SourceDetection::k_ssp(g.n(), 4);
        let (dense, frontier) = assert_all_strategies_agree(&alg, &g, g.n() + 1);
        assert!(
            frontier.work.edge_relaxations < dense.work.edge_relaxations,
            "{name}: frontier {} !< dense {}",
            frontier.work.edge_relaxations,
            dense.work.edge_relaxations
        );
    }
}

#[test]
fn le_list_strategies_bit_identical_on_workloads() {
    let mut rng = StdRng::seed_from_u64(0xEF12);
    for (name, g) in workload_graphs() {
        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        let alg = LeListAlgorithm::new(ranks);
        let (dense, frontier) = assert_all_strategies_agree(&alg, &g, g.n() + 1);
        assert!(
            frontier.work.edge_relaxations < dense.work.edge_relaxations,
            "{name}: frontier {} !< dense {}",
            frontier.work.edge_relaxations,
            dense.work.edge_relaxations
        );
    }
}

#[test]
fn widest_paths_and_connectivity_strategies_agree() {
    // Non-min-plus semirings exercise the generic pull-recompute path.
    for (_, g) in workload_graphs() {
        assert_all_strategies_agree(&WidestPaths::apwp(g.n()), &g, g.n() + 1);
        assert_all_strategies_agree(&Connectivity::all_pairs(g.n()), &g, g.n() + 1);
    }
}

#[test]
fn fixed_iteration_runs_agree_before_convergence() {
    // run_with (exact h hops, no fixpoint shortcut for the result) must
    // also match hop for hop, including h far beyond convergence.
    let g = grid_graph(6, 6, 1.0..4.0, &mut StdRng::seed_from_u64(0xEF13));
    let alg = SourceDetection::apsp(g.n());
    for h in [0, 1, 2, 5, 40] {
        let dense = run_with(&alg, &g, h, EngineStrategy::Dense);
        for strategy in STRATEGIES {
            let run = run_with(&alg, &g, h, strategy);
            assert_eq!(run.states, dense.states, "h = {h}, strategy {strategy:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Thread-count determinism: under the real thread-parallel rayon
// backend, every output must be bit-identical across `MTE_THREADS`
// values. The shim guarantees this by construction (fixed-shape
// reduction trees, thread-count-independent chunk layout); these tests
// pin the guarantee end to end for the engine, the oracle, and the FRT
// pipeline. Graphs are sized ≥ 2 × the chunking granularity so the
// multi-threaded runs genuinely split work across chunks.
// ---------------------------------------------------------------------

/// Runs `f` on a dedicated pool of the given total parallelism.
fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build cannot fail")
        .install(f)
}

#[test]
fn engine_outputs_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0xD371);
    let g = gnm_graph(400, 1200, 1.0..9.0, &mut rng);
    let alg = SourceDetection::k_ssp(g.n(), 6);
    for strategy in STRATEGIES {
        let r1 = with_threads(1, || run_to_fixpoint_with(&alg, &g, g.n() + 1, strategy));
        let r4 = with_threads(4, || run_to_fixpoint_with(&alg, &g, g.n() + 1, strategy));
        assert_eq!(r1.states, r4.states, "states differ under {strategy:?}");
        assert_eq!(r1.work, r4.work, "work counters differ under {strategy:?}");
        assert_eq!(r1.iterations, r4.iterations);
        assert_eq!(r1.fixpoint, r4.fixpoint);
    }
}

#[test]
fn oracle_outputs_bit_identical_across_thread_counts() {
    use metric_tree_embedding::core::oracle::oracle_run_to_fixpoint_with;
    use metric_tree_embedding::core::simgraph::SimulatedGraph;
    let mut rng = StdRng::seed_from_u64(0xD372);
    let g = gnm_graph(160, 420, 1.0..6.0, &mut rng);
    let sim = SimulatedGraph::without_hopset(&g, 24, 0.15, &mut rng);
    let alg = SourceDetection::k_ssp(g.n(), 5);
    for strategy in [EngineStrategy::Dense, EngineStrategy::Frontier] {
        let r1 = with_threads(1, || {
            oracle_run_to_fixpoint_with(&alg, &sim, 4 * g.n(), strategy)
        });
        let r4 = with_threads(4, || {
            oracle_run_to_fixpoint_with(&alg, &sim, 4 * g.n(), strategy)
        });
        assert_eq!(r1.states, r4.states, "states differ under {strategy:?}");
        assert_eq!(r1.work, r4.work, "work counters differ under {strategy:?}");
        assert_eq!(r1.h_iterations, r4.h_iterations);
        assert_eq!(r1.fixpoint, r4.fixpoint);
    }
}

#[test]
fn frt_pipeline_bit_identical_across_thread_counts() {
    use metric_tree_embedding::core::frt::{FrtConfig, FrtEmbedding};
    let mut rng = StdRng::seed_from_u64(0xD373);
    let g = gnm_graph(180, 520, 1.0..8.0, &mut rng);
    let sample = |threads: usize| {
        with_threads(threads, || {
            let mut rng = StdRng::seed_from_u64(0xBEE);
            FrtEmbedding::sample(&g, &FrtConfig::default(), &mut rng)
        })
    };
    let e1 = sample(1);
    let e4 = sample(4);
    assert_eq!(e1.beta().to_bits(), e4.beta().to_bits());
    assert_eq!(e1.h_iterations(), e4.h_iterations());
    assert_eq!(e1.work(), e4.work());
    assert_eq!(e1.tree().len(), e4.tree().len());
    for v in 0..g.n() as NodeId {
        assert_eq!(
            e1.le_lists()[v as usize].entries(),
            e4.le_lists()[v as usize].entries(),
            "LE list of node {v} differs"
        );
        assert_eq!(e1.tree().leaf(v), e4.tree().leaf(v));
    }
    for u in (0..g.n() as NodeId).step_by(7) {
        for v in (0..g.n() as NodeId).step_by(11) {
            assert_eq!(
                e1.distance(u, v).to_bits(),
                e4.distance(u, v).to_bits(),
                "embedded distance ({u},{v}) differs"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random-graph differential fuzz: SSSP, 3-SSP, and LE lists under
    /// all strategies on arbitrary (possibly disconnected) graphs.
    #[test]
    fn random_graphs_all_strategies_agree(
        n in 2usize..28,
        extra in 0usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Two independent components (the second offset past the first)
        // keep the disconnected case — the degenerate one worth fuzzing —
        // in every batch.
        let n2 = 1 + n / 3;
        let mut edges: Vec<(NodeId, NodeId, f64)> =
            gnm_graph(n, (n - 1 + extra).min(n * (n - 1) / 2), 1.0..9.0, &mut rng)
                .edges()
                .collect();
        if n2 >= 2 {
            edges.extend(
                gnm_graph(n2, n2 - 1, 1.0..9.0, &mut rng)
                    .edges()
                    .map(|(u, v, w)| (u + n as NodeId, v + n as NodeId, w)),
            );
        }
        let g = Graph::from_edges(n + n2, edges);
        let cap = g.n() + 1;

        let sssp = SourceDetection::sssp(g.n(), (seed % n as u64) as NodeId);
        assert_all_strategies_agree(&sssp, &g, cap);

        let kssp = SourceDetection::k_ssp(g.n(), 3);
        assert_all_strategies_agree(&kssp, &g, cap);

        let ranks = Arc::new(Ranks::sample(g.n(), &mut rng));
        assert_all_strategies_agree(&LeListAlgorithm::new(ranks), &g, cap);
    }

    /// The frontier engine's relaxation count never exceeds the dense
    /// engine's, on any random graph.
    #[test]
    fn frontier_work_never_exceeds_dense(
        n in 2usize..24,
        extra in 0usize..30,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gnm_graph(n, (n - 1 + extra).min(n * (n - 1) / 2), 1.0..9.0, &mut rng);
        let alg = SourceDetection::apsp(g.n());
        let dense = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Dense);
        let frontier = run_to_fixpoint_with(&alg, &g, g.n() + 1, EngineStrategy::Frontier);
        prop_assert!(frontier.work.edge_relaxations <= dense.work.edge_relaxations);
        prop_assert!(frontier.work.touched_vertices <= dense.work.touched_vertices);
    }
}
