//! Checkpoint/resume differential suite (PR 8 tentpole): a run
//! interrupted at *any* hop and resumed from its checkpoint is
//! **bit-identical** to the uninterrupted run — same states, same hop
//! counts, same fixpoint flags — on every backend (owned, arena, dense,
//! switching, oracle), at every thread count, and whether the
//! checkpoint stayed in memory or roundtripped through the crash-safe
//! snapshot store. The recovery-ladder variants of these assertions
//! (resume after an injected fault) live in `tests/fault_harness.rs`.

use metric_tree_embedding::core::arena::run_to_fixpoint_arena_with;
use metric_tree_embedding::core::catalog::SourceDetection;
use metric_tree_embedding::core::checkpoint::{
    try_oracle_run_checkpointed_with, try_resume_oracle_run_with,
    try_resume_run_to_fixpoint_arena_with, try_resume_run_to_fixpoint_dense_with,
    try_resume_run_to_fixpoint_switching_with, try_resume_run_to_fixpoint_with,
    try_run_checkpointed_arena_with, try_run_checkpointed_dense_with,
    try_run_checkpointed_switching_with, try_run_checkpointed_with, Checkpoint, CheckpointPolicy,
};
use metric_tree_embedding::core::dense::SwitchThresholds;
use metric_tree_embedding::core::engine::{run_to_fixpoint_with, EngineStrategy};
use metric_tree_embedding::core::frt::le_list::{LeListAlgorithm, Ranks};
use metric_tree_embedding::core::oracle::oracle_run_to_fixpoint_with;
use metric_tree_embedding::core::simgraph::SimulatedGraph;
use metric_tree_embedding::persist::{SnapshotReader, SnapshotWriter};
use metric_tree_embedding::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::sync::Mutex;

/// Runs `f` on a dedicated pool of the given total parallelism — the
/// `MTE_THREADS` sweep without process-global state.
fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build cannot fail")
        .install(f)
}

const THREADS: [usize; 2] = [1, 4];

fn fixture_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(0xC4E0);
    gnm_graph(70, 170, 1.0..9.0, &mut rng)
}

/// Collects a checkpoint after every hop of a checkpointed run via the
/// given driver, panicking if the run itself fails.
fn capture_all<M, R>(run: impl FnOnce(&Mutex<Vec<Checkpoint<M>>>) -> R) -> (R, Vec<Checkpoint<M>>) {
    let checkpoints = Mutex::new(Vec::new());
    let result = run(&checkpoints);
    (result, checkpoints.into_inner().unwrap())
}

// ---------------------------------------------------------------------
// Owned backend.
// ---------------------------------------------------------------------

#[test]
fn owned_every_checkpoint_resumes_bit_identically_across_threads() {
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    let mut per_thread_states = Vec::new();
    for threads in THREADS {
        let (g, alg) = (&g, &alg);
        let states = with_threads(threads, move || {
            let reference = run_to_fixpoint_with(alg, g, cap, strategy);
            let ((run, _), checkpoints) = capture_all(|sink| {
                try_run_checkpointed_with(
                    alg,
                    g,
                    cap,
                    strategy,
                    CheckpointPolicy::every_hops(1),
                    |c| {
                        sink.lock().unwrap().push(c.clone());
                        Ok(())
                    },
                )
                .unwrap()
            });
            assert_eq!(run.states, reference.states);
            assert!(!checkpoints.is_empty(), "run too short to checkpoint");
            for ckpt in &checkpoints {
                let (resumed, report) =
                    try_resume_run_to_fixpoint_with(alg, g, cap, strategy, ckpt).unwrap();
                assert_eq!(resumed.states, reference.states, "hop {}", ckpt.hop);
                assert_eq!(resumed.iterations, reference.iterations, "hop {}", ckpt.hop);
                assert_eq!(resumed.fixpoint, reference.fixpoint, "hop {}", ckpt.hop);
                assert!(report.converged);
            }
            reference.states
        });
        per_thread_states.push(states);
    }
    assert_eq!(
        per_thread_states[0], per_thread_states[1],
        "thread counts disagree"
    );
}

// ---------------------------------------------------------------------
// Arena backend (ranked and unranked stores).
// ---------------------------------------------------------------------

#[test]
fn arena_every_checkpoint_resumes_bit_identically_across_threads() {
    let g = fixture_graph();
    let ranks = Arc::new(Ranks::sample(g.n(), &mut StdRng::seed_from_u64(0xC4E1)));
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    // k-SSP exercises the unranked pool, the LE lists the rank column.
    let kssp = SourceDetection::k_ssp(g.n(), 4);
    let lelist = LeListAlgorithm::new(Arc::clone(&ranks));
    for threads in THREADS {
        let (g, kssp, lelist) = (&g, &kssp, &lelist);
        with_threads(threads, move || {
            {
                let reference = run_to_fixpoint_arena_with(kssp, g, cap, strategy);
                let (_, checkpoints) = capture_all(|sink| {
                    try_run_checkpointed_arena_with(
                        kssp,
                        g,
                        cap,
                        strategy,
                        CheckpointPolicy::every_hops(1),
                        |c| {
                            sink.lock().unwrap().push(c.clone());
                            Ok(())
                        },
                    )
                    .unwrap()
                });
                assert!(!checkpoints.is_empty());
                for ckpt in &checkpoints {
                    let (resumed, _) =
                        try_resume_run_to_fixpoint_arena_with(kssp, g, cap, strategy, ckpt)
                            .unwrap();
                    assert_eq!(resumed.states, reference.states, "k-SSP hop {}", ckpt.hop);
                    assert_eq!(resumed.iterations, reference.iterations, "hop {}", ckpt.hop);
                    assert_eq!(resumed.fixpoint, reference.fixpoint);
                }
            }
            {
                let reference = run_to_fixpoint_arena_with(lelist, g, cap, strategy);
                let (_, checkpoints) = capture_all(|sink| {
                    try_run_checkpointed_arena_with(
                        lelist,
                        g,
                        cap,
                        strategy,
                        CheckpointPolicy::every_hops(2),
                        |c| {
                            sink.lock().unwrap().push(c.clone());
                            Ok(())
                        },
                    )
                    .unwrap()
                });
                assert!(!checkpoints.is_empty());
                for ckpt in &checkpoints {
                    let (resumed, _) =
                        try_resume_run_to_fixpoint_arena_with(lelist, g, cap, strategy, ckpt)
                            .unwrap();
                    assert_eq!(resumed.states, reference.states, "LE hop {}", ckpt.hop);
                    assert_eq!(resumed.iterations, reference.iterations, "hop {}", ckpt.hop);
                    assert_eq!(resumed.fixpoint, reference.fixpoint);
                }
            }
        });
    }
}

// ---------------------------------------------------------------------
// Dense and switching backends.
// ---------------------------------------------------------------------

#[test]
fn dense_every_checkpoint_resumes_bit_identically_across_threads() {
    let mut rng = StdRng::seed_from_u64(0xC4E2);
    let g = gnm_graph(40, 100, 1.0..7.0, &mut rng);
    let alg = SourceDetection::apsp(g.n());
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    for threads in THREADS {
        let (g, alg) = (&g, &alg);
        with_threads(threads, move || {
            let ((reference, _), checkpoints) = capture_all(|sink| {
                try_run_checkpointed_dense_with(
                    alg,
                    g,
                    cap,
                    strategy,
                    None,
                    CheckpointPolicy::every_hops(1),
                    |c| {
                        sink.lock().unwrap().push(c.clone());
                        Ok(())
                    },
                )
                .unwrap()
            });
            assert!(!checkpoints.is_empty());
            for ckpt in &checkpoints {
                let (resumed, _) =
                    try_resume_run_to_fixpoint_dense_with(alg, g, cap, strategy, ckpt).unwrap();
                assert_eq!(resumed.states, reference.states, "hop {}", ckpt.hop);
                assert_eq!(resumed.iterations, reference.iterations, "hop {}", ckpt.hop);
                assert_eq!(resumed.fixpoint, reference.fixpoint);
            }
        });
    }
}

#[test]
fn switching_every_checkpoint_resumes_bit_identically_across_threads() {
    let mut rng = StdRng::seed_from_u64(0xC4E3);
    let g = gnm_graph(40, 100, 1.0..7.0, &mut rng);
    let alg = SourceDetection::apsp(g.n());
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    // Aggressive thresholds so the run actually flips representation
    // mid-flight — checkpoints land on both sides of the switch.
    let thresholds = SwitchThresholds {
        row_density: 0.1,
        saturation: 0.1,
        revert: 0.01,
        budget_bytes: None,
    };
    for threads in THREADS {
        let (g, alg) = (&g, &alg);
        with_threads(threads, move || {
            let ((reference, _), checkpoints) = capture_all(|sink| {
                try_run_checkpointed_switching_with(
                    alg,
                    g,
                    cap,
                    strategy,
                    thresholds,
                    CheckpointPolicy::every_hops(1),
                    |c| {
                        sink.lock().unwrap().push(c.clone());
                        Ok(())
                    },
                )
                .unwrap()
            });
            assert!(!checkpoints.is_empty());
            for ckpt in &checkpoints {
                let (resumed, _) = try_resume_run_to_fixpoint_switching_with(
                    alg, g, cap, strategy, thresholds, ckpt,
                )
                .unwrap();
                assert_eq!(resumed.states, reference.states, "hop {}", ckpt.hop);
                assert_eq!(resumed.iterations, reference.iterations, "hop {}", ckpt.hop);
                assert_eq!(resumed.fixpoint, reference.fixpoint);
            }
        });
    }
}

// ---------------------------------------------------------------------
// Oracle.
// ---------------------------------------------------------------------

#[test]
fn oracle_every_checkpoint_resumes_bit_identically_across_threads() {
    let mut rng = StdRng::seed_from_u64(0xC4E4);
    let g = gnm_graph(60, 150, 1.0..6.0, &mut rng);
    let sim = SimulatedGraph::without_hopset(&g, 16, 0.15, &mut rng);
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let cap = 4 * g.n();
    let strategy = EngineStrategy::default();
    for threads in THREADS {
        let (sim, alg) = (&sim, &alg);
        with_threads(threads, move || {
            let reference = oracle_run_to_fixpoint_with(alg, sim, cap, strategy);
            let (_, checkpoints) = capture_all(|sink| {
                try_oracle_run_checkpointed_with(
                    alg,
                    sim,
                    cap,
                    strategy,
                    CheckpointPolicy::every_levels(1),
                    |c| {
                        sink.lock().unwrap().push(c.clone());
                        Ok(())
                    },
                )
                .unwrap()
            });
            assert!(
                !checkpoints.is_empty(),
                "oracle run too short to checkpoint"
            );
            for ckpt in &checkpoints {
                let (resumed, report) =
                    try_resume_oracle_run_with(alg, sim, cap, strategy, ckpt).unwrap();
                assert_eq!(resumed.states, reference.states, "round {}", ckpt.hop);
                assert_eq!(
                    resumed.h_iterations, reference.h_iterations,
                    "round {}",
                    ckpt.hop
                );
                assert_eq!(resumed.fixpoint, reference.fixpoint);
                assert_eq!(report.converged, reference.converged);
            }
        });
    }
}

// ---------------------------------------------------------------------
// Through the snapshot store: a checkpoint that went to disk and back
// resumes exactly like the in-memory one.
// ---------------------------------------------------------------------

#[test]
fn persist_roundtripped_checkpoints_resume_bit_identically() {
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    let reference = run_to_fixpoint_with(&alg, &g, cap, strategy);
    let (_, checkpoints) = capture_all(|sink| {
        try_run_checkpointed_with(
            &alg,
            &g,
            cap,
            strategy,
            CheckpointPolicy::every_hops(1),
            |c| {
                sink.lock().unwrap().push(c.clone());
                Ok(())
            },
        )
        .unwrap()
    });
    assert!(!checkpoints.is_empty());
    for ckpt in &checkpoints {
        let image = SnapshotWriter::new().put_checkpoint(ckpt).encode();
        let decoded = SnapshotReader::decode(&image)
            .expect("snapshot decodes")
            .checkpoint()
            .expect("checkpoint section decodes");
        assert_eq!(&decoded, ckpt, "roundtrip changed the checkpoint");
        let (resumed, _) =
            try_resume_run_to_fixpoint_with(&alg, &g, cap, strategy, &decoded).unwrap();
        assert_eq!(resumed.states, reference.states, "hop {}", ckpt.hop);
        assert_eq!(resumed.iterations, reference.iterations, "hop {}", ckpt.hop);
        assert_eq!(resumed.fixpoint, reference.fixpoint);
    }
}

/// A crash after *writing* but before the run finished: the snapshot on
/// disk is the only artifact. Resume from the file alone.
#[test]
fn resume_from_disk_after_simulated_crash() {
    let g = fixture_graph();
    let alg = SourceDetection::k_ssp(g.n(), 4);
    let cap = g.n() + 1;
    let strategy = EngineStrategy::default();
    let reference = run_to_fixpoint_with(&alg, &g, cap, strategy);

    let dir = std::env::temp_dir().join(format!("mte_resume_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.mte");

    // The "crashing" process: checkpoint to disk every hop, abandon the
    // run by erroring out of the sink after the second capture.
    let mut captures = 0;
    let aborted = try_run_checkpointed_with(
        &alg,
        &g,
        cap,
        strategy,
        CheckpointPolicy::every_hops(1),
        |c| {
            SnapshotWriter::new()
                .put_checkpoint(c)
                .write_to(&path)
                .map_err(|e| metric_tree_embedding::core::RunError::SnapshotCorrupt {
                    detail: e.to_string(),
                })?;
            captures += 1;
            if captures == 2 {
                return Err(metric_tree_embedding::core::RunError::Panicked {
                    message: "simulated crash".to_string(),
                });
            }
            Ok(())
        },
    );
    assert!(aborted.is_err(), "the simulated crash must abort the run");

    // The "recovering" process: all it has is the file.
    let ckpt = SnapshotReader::read_from(&path)
        .expect("snapshot survives the crash")
        .checkpoint()
        .expect("checkpoint section intact");
    assert_eq!(ckpt.hop, 2);
    let (resumed, _) = try_resume_run_to_fixpoint_with(&alg, &g, cap, strategy, &ckpt).unwrap();
    assert_eq!(resumed.states, reference.states);
    assert_eq!(resumed.iterations, reference.iterations);
    assert_eq!(resumed.fixpoint, reference.fixpoint);
    std::fs::remove_dir_all(&dir).unwrap();
}
